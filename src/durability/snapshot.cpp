#include "durability/snapshot.hpp"

#include <cstring>

#include "durability/io.hpp"

namespace arcadia::durability {

std::string snapshot_file_name(std::uint64_t lsn) {
  std::string digits = std::to_string(lsn);
  if (digits.size() < 16) digits.insert(0, 16 - digits.size(), '0');
  return "snap-" + digits + ".arcs";
}

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap) {
  Encoder enc;
  for (const char c : kSnapshotMagic) enc.u8(static_cast<std::uint8_t>(c));
  enc.u32(kSnapshotVersion);
  enc.u64(snap.lsn);
  enc.sim_time(snap.at);
  enc.u32(static_cast<std::uint32_t>(snap.shards.size()));
  for (const auto& shard : snap.shards) {
    enc.u32(shard.shard);
    enc.str(shard.name);
    enc.u32(static_cast<std::uint32_t>(shard.model.size()));
    enc.raw(shard.model);
    enc.u64(shard.model_digest);
    enc.u32(static_cast<std::uint32_t>(shard.gauges.size()));
    for (const auto& g : shard.gauges) {
      enc.str(g.id);
      enc.boolean(g.live);
      enc.boolean(g.suspect);
      enc.sim_time(g.last_report);
    }
    enc.u8(shard.health);
    enc.u32(static_cast<std::uint32_t>(shard.rng_streams.size()));
    for (const auto& st : shard.rng_streams) {
      for (const std::uint64_t word : st.s) enc.u64(word);
      enc.boolean(st.have_spare);
      enc.f64(st.spare);
    }
    enc.u64(shard.repairs_committed);
  }
  // Trailing CRC over everything above, so a torn snapshot (possible only
  // via the .tmp path — the rename is atomic) is detected on load.
  const std::uint32_t crc = crc32(enc.bytes().data(), enc.size());
  enc.u32(crc);
  return enc.take();
}

Snapshot decode_snapshot(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 8 + 4 ||
      std::memcmp(bytes.data(), kSnapshotMagic, 4) != 0) {
    throw DurabilityError("not a snapshot (bad magic/short header)");
  }
  {
    Decoder tail(bytes.data() + bytes.size() - 4, 4);
    const std::uint32_t want = tail.u32();
    if (crc32(bytes.data(), bytes.size() - 4) != want) {
      throw DurabilityError("snapshot CRC mismatch");
    }
  }
  Decoder dec(bytes.data() + 4, bytes.size() - 4 - 4);
  const std::uint32_t version = dec.u32();
  if (version != kSnapshotVersion) {
    throw DurabilityError("snapshot format version " + std::to_string(version));
  }
  Snapshot snap;
  snap.lsn = dec.u64();
  snap.at = dec.sim_time();
  const std::uint32_t shards = dec.u32();
  snap.shards.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    ShardSnapshot shard;
    shard.shard = dec.u32();
    shard.name = dec.str();
    const std::uint32_t model_len = dec.u32();
    shard.model.resize(model_len);
    for (std::uint32_t b = 0; b < model_len; ++b) shard.model[b] = dec.u8();
    shard.model_digest = dec.u64();
    const std::uint32_t gauges = dec.u32();
    shard.gauges.reserve(gauges);
    for (std::uint32_t g = 0; g < gauges; ++g) {
      GaugeState state;
      state.id = dec.str();
      state.live = dec.boolean();
      state.suspect = dec.boolean();
      state.last_report = dec.sim_time();
      shard.gauges.push_back(std::move(state));
    }
    shard.health = dec.u8();
    const std::uint32_t streams = dec.u32();
    shard.rng_streams.reserve(streams);
    for (std::uint32_t s = 0; s < streams; ++s) {
      Rng::State st;
      for (auto& word : st.s) word = dec.u64();
      st.have_spare = dec.boolean();
      st.spare = dec.f64();
      shard.rng_streams.push_back(st);
    }
    shard.repairs_committed = dec.u64();
    snap.shards.push_back(std::move(shard));
  }
  if (!dec.done()) throw DurabilityError("trailing bytes in snapshot");
  return snap;
}

std::string write_snapshot(const std::string& dir, const Snapshot& snap,
                           const std::function<void()>& between) {
  const std::string name = snapshot_file_name(snap.lsn);
  write_file_atomic(dir + "/" + name, encode_snapshot(snap), between);
  return name;
}

Snapshot load_snapshot(const std::string& path) {
  return decode_snapshot(read_file(path));
}

std::vector<std::string> list_snapshots(const std::string& dir) {
  std::vector<std::string> snaps;
  for (const auto& name : list_dir(dir)) {
    if (name.starts_with("snap-") && name.ends_with(".arcs")) {
      snaps.push_back(name);
    }
  }
  return snaps;  // list_dir sorts; zero-padded names sort by LSN
}

void prune_snapshots(const std::string& dir, std::size_t keep) {
  const std::vector<std::string> snaps = list_snapshots(dir);
  if (snaps.size() <= keep) return;
  for (std::size_t i = 0; i + keep < snaps.size(); ++i) {
    remove_file(dir + "/" + snaps[i]);
  }
}

}  // namespace arcadia::durability
