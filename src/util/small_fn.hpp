// A move-only type-erased callable with small-buffer optimisation. The
// simulator schedules hundreds of thousands of events per run; storing each
// callback in a std::function costs a heap allocation for anything beyond a
// pointer or two of captures. SmallFn keeps callables up to kInlineSize
// bytes (>= 48: this covers every scheduling lambda in the codebase — a
// couple of pointers, a SimTime, a shared_ptr) inline in the event slot,
// falling back to the heap only for oversized captures.
// arclint: hotpath — steady-state code: no std::function (heap-owning
// type erasure); util::SmallFn, templates, or plain data only.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace arcadia::util {

template <typename Signature>
class SmallFn;

template <typename R, typename... Args>
class SmallFn<R(Args...)> {
 public:
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* obj, Args&&... args) -> R {
        return (*static_cast<Fn*>(obj))(std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        if (dst) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        }
        static_cast<Fn*>(src)->~Fn();
      };
      inline_ = true;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](void* obj, Args&&... args) -> R {
        return (*static_cast<Fn*>(obj))(std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        if (!dst) delete static_cast<Fn*>(src);
      };
      inline_ = false;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Throws std::bad_function_call when empty, matching the std::function
  /// this type replaced (fail-fast instead of a call through null).
  R operator()(Args... args) {
    if (!invoke_) throw std::bad_function_call();
    return invoke_(target(), std::forward<Args>(args)...);
  }

  /// True when the callable lives in the inline buffer (bench/diagnostics).
  bool is_inline() const { return invoke_ != nullptr && inline_; }

 private:
  void* target() { return inline_ ? static_cast<void*>(buf_) : heap_; }

  void reset() {
    if (!invoke_) return;
    if (inline_) {
      manage_(nullptr, buf_);
    } else {
      manage_(nullptr, heap_);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = nullptr;
  }

  void move_from(SmallFn& other) {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    inline_ = other.inline_;
    if (invoke_) {
      if (inline_) {
        other.manage_(buf_, other.buf_);  // move-construct + destroy source
      } else {
        heap_ = other.heap_;
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void* heap_ = nullptr;
  R (*invoke_)(void*, Args&&...) = nullptr;
  /// dst != null: move-construct *dst from *src and destroy *src (inline
  /// storage); dst == null: destroy/delete *src.
  void (*manage_)(void* dst, void* src) = nullptr;
  bool inline_ = false;
};

}  // namespace arcadia::util
