// Exception hierarchy for Arcadia. Every module throws a subclass of
// arcadia::Error so callers can catch framework errors distinctly from
// std:: failures.
#pragma once

#include <stdexcept>
#include <string>

namespace arcadia {

/// Root of the Arcadia exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Architectural-model violations: unknown elements, invalid attachments,
/// style violations, transaction misuse. Matches the paper's `abort
/// ModelError` escape in Figure 5.
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error("ModelError: " + what) {}
};

/// Lexing/parsing failures in the Acme ADL, Armani expressions, or repair
/// scripts. Carries a 1-based source position.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error("ParseError at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Runtime faults while interpreting a repair script (bad types, unknown
/// operators, `abort <reason>` statements).
class ScriptError : public Error {
 public:
  explicit ScriptError(const std::string& what) : Error("ScriptError: " + what) {}
};

/// Failures of environment-manager operators against the (simulated)
/// runtime system, e.g. activating a server that does not exist.
class RuntimeOpError : public Error {
 public:
  explicit RuntimeOpError(const std::string& what)
      : Error("RuntimeOpError: " + what) {}
};

/// Simulation-kernel misuse (scheduling into the past, running a finished
/// simulator, malformed topologies).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error("SimError: " + what) {}
};

}  // namespace arcadia
