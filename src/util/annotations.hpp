// Concurrency annotations and locking primitives — the single place raw
// std::mutex / std::condition_variable are allowed to appear (enforced by
// tools/arclint rule `raw-mutex`). Everything that shares state across
// threads locks through the wrappers below, which carry Clang Thread Safety
// Analysis capabilities: a clang build with -Wthread-safety statically
// proves that every GUARDED_BY member is only touched with its mutex held
// and that REQUIRES contracts hold at every call site. On non-clang
// compilers the attributes expand to nothing and the wrappers are
// zero-overhead shims over the std primitives.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// (the macro set below is the documented canonical spelling).
//
// arclint: allow-file(raw-mutex): this header *is* the wrapper layer.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ARC_TSA(x) __attribute__((x))
#endif
#endif
#ifndef ARC_TSA
#define ARC_TSA(x)  // not clang: attributes compile away
#endif

#define ARC_CAPABILITY(x) ARC_TSA(capability(x))
#define ARC_SCOPED_CAPABILITY ARC_TSA(scoped_lockable)
#define ARC_GUARDED_BY(x) ARC_TSA(guarded_by(x))
#define ARC_PT_GUARDED_BY(x) ARC_TSA(pt_guarded_by(x))
#define ARC_REQUIRES(...) ARC_TSA(requires_capability(__VA_ARGS__))
#define ARC_EXCLUDES(...) ARC_TSA(locks_excluded(__VA_ARGS__))
#define ARC_ACQUIRE(...) ARC_TSA(acquire_capability(__VA_ARGS__))
#define ARC_RELEASE(...) ARC_TSA(release_capability(__VA_ARGS__))
#define ARC_TRY_ACQUIRE(...) ARC_TSA(try_acquire_capability(__VA_ARGS__))
#define ARC_ACQUIRED_BEFORE(...) ARC_TSA(acquired_before(__VA_ARGS__))
#define ARC_ACQUIRED_AFTER(...) ARC_TSA(acquired_after(__VA_ARGS__))
#define ARC_RETURN_CAPABILITY(x) ARC_TSA(lock_returned(x))
#define ARC_NO_TSA ARC_TSA(no_thread_safety_analysis)

namespace arcadia::util {

/// Annotated mutual-exclusion capability. Prefer the scoped MutexLock;
/// lock()/unlock() exist for the rare hand-rolled critical section (and for
/// CondVar, which unlocks/relocks around the wait).
class ARC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ARC_ACQUIRE() { mu_.lock(); }
  void unlock() ARC_RELEASE() { mu_.unlock(); }
  bool try_lock() ARC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over a Mutex (std::lock_guard with a capability).
class ARC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ARC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ARC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. wait() takes the Mutex itself
/// (not a lock object) so the REQUIRES contract names the capability the
/// analysis tracks; use the loop form — no predicate overload, because a
/// predicate lambda would read guarded state from an un-annotated closure
/// and defeat the analysis:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void wait(Mutex& mu) ARC_REQUIRES(mu) { cv_.wait(mu); }

 private:
  std::condition_variable_any cv_;
};

/// Scoped *logical lane* marker for sharded simulation. A lane names a
/// serial execution context that may migrate between OS threads: shard k's
/// window runs on whichever pool worker picks it up this round, but never
/// on two threads at once (the coordinator's barrier protocol guarantees
/// that). SerialDomain keys on the active lane when one is set, so the
/// "all mutating calls happen serially" discipline keeps holding — and
/// keeps being checked — across thread migrations. Tokens are odd
/// (shard lanes use `ptr | 1`) so they can never collide with the even
/// per-thread keys SerialDomain derives when no lane is active. Nesting
/// saves and restores the outer lane.
class SerialLane {
 public:
  explicit SerialLane(std::uintptr_t token) : saved_(current_) {
    if (token != 0) current_ = token;
  }
  ~SerialLane() { current_ = saved_; }

  SerialLane(const SerialLane&) = delete;
  SerialLane& operator=(const SerialLane&) = delete;

  static std::uintptr_t current() { return current_; }

 private:
  inline static thread_local std::uintptr_t current_ = 0;
  std::uintptr_t saved_;
};

/// Debug ownership checker for classes whose discipline is not a mutex but
/// "all mutating calls happen serially" (on the simulation thread, or —
/// under the sharded kernel — inside one shard's SerialLane): GaugeManager,
/// FleetManager, PlanExecutor. Binds to the first caller's key and asserts
/// every later check() presents the same key; a no-op in NDEBUG builds.
/// The key is the active SerialLane token when one is set (odd), else a
/// hash of the OS thread id (forced even), so lane-scoped execution may
/// migrate between pool workers while lane-less code keeps the classic
/// one-thread binding. Binding is lazy (not at construction) because
/// ExperimentSuite builds a rig on one pool thread and drives it there —
/// the constructing thread is the owning thread, but only by the time the
/// first call lands.
class SerialDomain {
 public:
  SerialDomain() = default;

  // Movable so owners can live in growing containers (vector<Shard>).
  // Moving a domain is only legal while its owner is quiescent, which is
  // exactly when container growth happens; the binding travels along.
  SerialDomain(SerialDomain&& other) noexcept {
#ifndef NDEBUG
    owner_.store(other.owner_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
#endif
  }
  SerialDomain& operator=(SerialDomain&& other) noexcept {
#ifndef NDEBUG
    owner_.store(other.owner_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
#endif
    return *this;
  }

  void check() const {
#ifndef NDEBUG
    const std::uintptr_t self = caller_key();
    std::uintptr_t expected = 0;  // unbound
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first call: bound to this lane/thread
    }
    assert(expected == self &&
           "SerialDomain: call from outside the owning lane/thread");
#endif
  }

  /// Release ownership (tests that legitimately hand an object between
  /// phases re-bind on the next check()).
  void detach() {
#ifndef NDEBUG
    owner_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
#ifndef NDEBUG
  static std::uintptr_t caller_key() {
    if (const std::uintptr_t lane = SerialLane::current(); lane != 0) {
      return lane;  // shard lanes are odd
    }
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return (static_cast<std::uintptr_t>(h) << 1) | 2;  // even, never 0
  }

  mutable std::atomic<std::uintptr_t> owner_{0};
#endif
};

}  // namespace arcadia::util
