// Forwarding header: the generators moved to util/deterministic_rng.hpp,
// the single allow-listed randomness source in the tree (see arclint's
// entropy rule). Kept so existing includers keep compiling.
#pragma once

#include "util/deterministic_rng.hpp"
