// CSV emission for experiment results. Benches write the series backing each
// figure to CSV (and to stdout) so plots can be regenerated externally.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/timeseries.hpp"

namespace arcadia {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter& field(const std::string& value);
  CsvWriter& field(double value);
  CsvWriter& field(std::int64_t value);
  void end_row();

 private:
  static bool needs_quoting(const std::string& value);
  std::ostream& out_;
  bool row_started_ = false;
};

/// Write several time series as aligned columns (union of timestamps,
/// sample-and-hold for missing points). Column 0 is time in seconds.
void write_series_csv(std::ostream& out, const std::vector<const TimeSeries*>& series);

}  // namespace arcadia
