// Shared helper for the string-keyed registries: renders a map's keys as
// " key1 key2 ..." for "unknown X (catalog: ...)" error messages.
#pragma once

#include <sstream>
#include <string>

namespace arcadia {

template <typename Map>
std::string catalog_of(const Map& map) {
  std::ostringstream out;
  for (const auto& [key, value] : map) out << " " << key;
  return out.str();
}

}  // namespace arcadia
