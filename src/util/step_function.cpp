#include "util/step_function.hpp"

#include <algorithm>

namespace arcadia {

StepFunction& StepFunction::step(SimTime at, double value) {
  auto it = std::lower_bound(
      steps_.begin(), steps_.end(), at,
      [](const auto& entry, SimTime t) { return entry.first < t; });
  if (it != steps_.end() && it->first == at) {
    it->second = value;
  } else {
    steps_.insert(it, {at, value});
  }
  return *this;
}

double StepFunction::value_at(SimTime t) const {
  // Last step with start <= t.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](SimTime tt, const auto& entry) { return tt < entry.first; });
  if (it == steps_.begin()) return initial_;
  return std::prev(it)->second;
}

SimTime StepFunction::next_change_after(SimTime t) const {
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](SimTime tt, const auto& entry) { return tt < entry.first; });
  if (it == steps_.end()) return SimTime::infinity();
  return it->first;
}

double StepFunction::integrate(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  double total = 0.0;
  SimTime cursor = from;
  while (cursor < to) {
    SimTime next = next_change_after(cursor);
    SimTime segment_end = std::min(next, to);
    total += value_at(cursor) * (segment_end - cursor).as_seconds();
    cursor = segment_end;
  }
  return total;
}

}  // namespace arcadia
