// Fixed-size thread pool for embarrassingly-parallel experiment work:
// running control and repair experiments concurrently, parameter sweeps in
// the ablation benches, and property-test replications — plus the worker
// pool behind sim::SimCoordinator's conservative windows (DESIGN.md §9).
// Parallelism is always deterministic by construction: either whole
// experiments (one simulator per task, no sharing) or lane-guarded shard
// windows whose cross-shard effects drain at single-threaded barriers.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace arcadia {

class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      util::MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// The index space is chunked into at most size() contiguous blocks. All
  /// blocks are joined before this returns — even when one throws — so the
  /// caller's captures never outlive the call; the exception from the
  /// lowest-indexed throwing block is rethrown (deterministic choice).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::function<void()>> queue_ ARC_GUARDED_BY(mutex_);
  bool stopping_ ARC_GUARDED_BY(mutex_) = false;
};

}  // namespace arcadia
