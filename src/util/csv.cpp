#include "util/csv.hpp"

#include <algorithm>
#include <set>

namespace arcadia {

bool CsvWriter::needs_quoting(const std::string& value) {
  return value.find_first_of(",\"\n") != std::string::npos;
}

CsvWriter& CsvWriter::field(const std::string& value) {
  if (row_started_) out_ << ',';
  row_started_ = true;
  if (needs_quoting(value)) {
    out_ << '"';
    for (char c : value) {
      if (c == '"') out_ << '"';
      out_ << c;
    }
    out_ << '"';
  } else {
    out_ << value;
  }
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  if (row_started_) out_ << ',';
  row_started_ = true;
  out_ << value;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t value) {
  if (row_started_) out_ << ',';
  row_started_ = true;
  out_ << value;
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_started_ = false;
}

void write_series_csv(std::ostream& out,
                      const std::vector<const TimeSeries*>& series) {
  CsvWriter csv(out);
  csv.field(std::string("time_s"));
  for (const auto* s : series) csv.field(s->name());
  csv.end_row();

  std::set<SimTime> times;
  for (const auto* s : series) {
    for (const auto& [t, v] : s->points()) times.insert(t);
  }
  for (SimTime t : times) {
    csv.field(t.as_seconds());
    for (const auto* s : series) csv.field(s->value_at(t));
    csv.end_row();
  }
}

}  // namespace arcadia
