// Time-stamped sample sequences. Every figure in the paper's evaluation is a
// log-scale time series (latency, queue length, available bandwidth); the
// experiment runner records these and the bench harness prints them.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace arcadia {

/// An append-only series of (time, value) samples, non-decreasing in time.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a sample. Time must be >= the last sample's time.
  void append(SimTime t, double value);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }
  /// Time of the first/last sample; nullopt on an empty series. (These used
  /// to return SimTime::zero() when empty, indistinguishable from a real
  /// t=0 sample — monitoring-lag math would treat "no data yet" as "data
  /// since t=0".)
  std::optional<SimTime> first_time() const;
  std::optional<SimTime> last_time() const;
  double last_value() const;

  /// Value of the most recent sample at or before t (sample-and-hold);
  /// `fallback` before the first sample.
  double value_at(SimTime t, double fallback = 0.0) const;

  /// Mean of samples with time in [from, to].
  double mean_over(SimTime from, SimTime to) const;
  double max_over(SimTime from, SimTime to) const;
  double min_over(SimTime from, SimTime to) const;

  /// Fraction of *time* (sample-and-hold weighting) in [from, to] during
  /// which the series exceeds `threshold`. This is the paper's headline
  /// metric: how long latency spent above 2 s.
  double fraction_above(double threshold, SimTime from, SimTime to) const;

  /// First time the series reaches or exceeds `threshold`, or
  /// SimTime::infinity(). Used for "latency crossed 2 s at ~140 s".
  SimTime first_crossing(double threshold) const;

  /// Downsample to one point per `bucket` (mean within each bucket) for
  /// compact printing.
  TimeSeries resample(SimTime bucket) const;

  /// Sliding-window mean sampled on a regular grid: at each step in
  /// [from, to], the mean of samples within the trailing `window`. Grid
  /// points with an empty window repeat the previous value (gauge-style
  /// sample-and-hold); leading empty windows are skipped.
  TimeSeries windowed_mean(SimTime window, SimTime step, SimTime from,
                           SimTime to) const;

 private:
  std::string name_;
  std::vector<std::pair<SimTime, double>> points_;
};

}  // namespace arcadia
