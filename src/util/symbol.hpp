// Interned symbols: the hot-path identity type of the architectural model.
// A Symbol is a dense uint32 id into a process-global intern table; equality
// and hashing are integer operations, so model lookups that used to compare
// strings (std::map<std::string, ...>) become a multiplicative hash plus a
// handful of integer probes. Interning is thread-safe (experiment suites run
// scenarios on a thread pool); reading an already-interned symbol's text is
// lock-free.
// arclint: hotpath — steady-state code: no std::function (heap-owning
// type erasure); util::SmallFn, templates, or plain data only.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace arcadia::util {

class Symbol {
 public:
  /// The empty symbol: id 0, text "". Doubles as "unset".
  constexpr Symbol() = default;

  /// Intern `text`, returning its dense id (idempotent; "" maps to the
  /// empty symbol).
  static Symbol intern(std::string_view text);

  std::uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }
  explicit operator bool() const { return id_ != 0; }

  /// The interned text; stable for the process lifetime.
  const std::string& str() const;
  std::string_view view() const { return str(); }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  /// Text comparison against raw strings, so call sites (and tests) can
  /// compare a symbol-typed field without interning first.
  friend bool operator==(Symbol a, std::string_view b) { return a.view() == b; }
  friend bool operator==(std::string_view a, Symbol b) { return a == b.view(); }
  friend bool operator!=(Symbol a, std::string_view b) { return a.view() != b; }
  friend bool operator!=(std::string_view a, Symbol b) { return a != b.view(); }
  /// Orders by interned text (deterministic across runs), not by id.
  friend bool operator<(Symbol a, Symbol b) { return a.view() < b.view(); }

  friend std::ostream& operator<<(std::ostream& os, Symbol s) {
    return os << s.view();
  }

  /// Number of distinct symbols interned so far (diagnostics/benches).
  static std::size_t interned_count();

 private:
  explicit constexpr Symbol(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Open-addressed hash map keyed by Symbol, tuned for the model's access
/// pattern: lookups dominate, mutations are rare (model build and repairs).
/// Entries are kept sorted by symbol text so iteration is deterministic and
/// matches the std::map<std::string, ...> order this container replaced —
/// every downstream consumer (ADL printer, evaluator set construction,
/// gauge deployment) sees the same order as before.
template <typename T>
class SymbolMap {
 public:
  struct Entry {
    Symbol key;
    T value;
  };
  using const_iterator = typename std::vector<Entry>::const_iterator;
  using iterator = typename std::vector<Entry>::iterator;

  SymbolMap() = default;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }

  bool contains(Symbol key) const { return find(key) != nullptr; }

  T* find(Symbol key) {
    const std::uint32_t pos = probe(key);
    return pos ? &entries_[pos - 1].value : nullptr;
  }
  const T* find(Symbol key) const {
    const std::uint32_t pos = probe(key);
    return pos ? &entries_[pos - 1].value : nullptr;
  }

  /// Insert or overwrite; returns the stored value.
  T& insert_or_assign(Symbol key, T value) {
    if (T* existing = find(key)) {
      *existing = std::move(value);
      return *existing;
    }
    return emplace_new(key, std::move(value));
  }

  /// Default-constructs on first access (std::map::operator[] semantics).
  T& operator[](Symbol key) {
    if (T* existing = find(key)) return *existing;
    return emplace_new(key, T{});
  }

  bool erase(Symbol key) {
    const std::uint32_t pos = probe(key);
    if (!pos) return false;
    entries_.erase(entries_.begin() + (pos - 1));
    rebuild_index();
    return true;
  }

  void clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  static std::uint32_t mix(Symbol key) { return key.id() * 2654435761u; }

  /// Returns entry position + 1, or 0 when absent.
  std::uint32_t probe(Symbol key) const {
    if (index_.empty()) return 0;
    const std::uint32_t mask = static_cast<std::uint32_t>(index_.size()) - 1;
    for (std::uint32_t i = mix(key) & mask;; i = (i + 1) & mask) {
      const std::uint32_t pos = index_[i];
      if (pos == 0) return 0;
      if (entries_[pos - 1].key == key) return pos;
    }
  }

  T& emplace_new(Symbol key, T value) {
    // Keep entries sorted by text; mutation is rare, so the O(n) insert and
    // index rebuild are paid where they do not matter.
    auto it = entries_.begin();
    while (it != entries_.end() && it->key.view() < key.view()) ++it;
    it = entries_.insert(it, Entry{key, std::move(value)});
    const std::size_t at = static_cast<std::size_t>(it - entries_.begin());
    rebuild_index();
    return entries_[at].value;
  }

  void rebuild_index() {
    std::size_t buckets = 8;
    // Load factor <= 0.5 keeps linear probes short.
    while (buckets < entries_.size() * 2) buckets *= 2;
    index_.assign(buckets, 0);
    const std::uint32_t mask = static_cast<std::uint32_t>(buckets) - 1;
    for (std::uint32_t pos = 1; pos <= entries_.size(); ++pos) {
      std::uint32_t i = mix(entries_[pos - 1].key) & mask;
      while (index_[i] != 0) i = (i + 1) & mask;
      index_[i] = pos;
    }
  }

  std::vector<Entry> entries_;        ///< sorted by key text
  std::vector<std::uint32_t> index_;  ///< open-addressed, entry pos + 1
};

}  // namespace arcadia::util
