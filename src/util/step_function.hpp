// Piecewise-constant functions of simulated time. Figure 7 of the paper
// specifies both the bandwidth-competition schedule and the request-rate /
// file-size schedule as stepping functions; this is their direct
// representation.
// arclint: hotpath — steady-state code: no std::function (heap-owning
// type erasure); util::SmallFn, templates, or plain data only.
#pragma once

#include <utility>
#include <vector>

#include "util/units.hpp"

namespace arcadia {

/// Right-continuous step function: value(t) is the value of the latest step
/// whose start time is <= t. Before the first step the `initial` value
/// applies.
class StepFunction {
 public:
  explicit StepFunction(double initial = 0.0) : initial_(initial) {}

  /// Add a step: from `at` onward the function takes `value`. Steps may be
  /// added in any order; they are kept sorted. Adding a second step at the
  /// same instant replaces the first.
  StepFunction& step(SimTime at, double value);

  double value_at(SimTime t) const;
  double initial_value() const { return initial_; }

  /// The first change time strictly after `t`, or SimTime::infinity() if the
  /// function is constant afterwards. Lets the simulator schedule exactly at
  /// breakpoints instead of polling.
  SimTime next_change_after(SimTime t) const;

  /// Definite integral over [from, to] (value-seconds); used by tests to
  /// validate workload totals.
  double integrate(SimTime from, SimTime to) const;

  const std::vector<std::pair<SimTime, double>>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

 private:
  double initial_;
  std::vector<std::pair<SimTime, double>> steps_;  // sorted by time
};

}  // namespace arcadia
