// A growable FIFO ring buffer: push_back / pop_front in O(1) with no
// per-element allocation. Replaces std::deque on hot monitoring paths
// (sliding-window gauges evict thousands of samples per run); a deque
// allocates and frees fixed-size chunks as the window slides, while the
// ring reaches its high-water capacity once and then never touches the
// heap again.
// arclint: hotpath — steady-state code: no std::function (heap-owning
// type erasure); util::SmallFn, templates, or plain data only.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace arcadia::util {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void pop_front() {
    buf_[head_] = T{};  // release held resources eagerly
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  const T& front() const { return buf_[head_]; }
  const T& back() const { return buf_[(head_ + size_ - 1) & mask_]; }

  /// Index from the front (0 = oldest element).
  const T& operator[](std::size_t i) const { return buf_[(head_ + i) & mask_]; }

  /// Drops the contents; keeps the capacity for reuse.
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) buf_[(head_ + i) & mask_] = T{};
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;       ///< power-of-two capacity
  std::size_t head_ = 0;     ///< index of the oldest element
  std::size_t size_ = 0;
  std::size_t mask_ = 0;     ///< capacity - 1
};

}  // namespace arcadia::util
