#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace arcadia {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace arcadia
