#include "util/symbol.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/annotations.hpp"

namespace arcadia::util {

namespace {

// Storage: two-level blocks whose pointers are published with release
// stores, so Symbol::str() and the lock-free lookup below never take the
// intern lock. Addresses of interned strings are stable for the process
// lifetime.
constexpr std::size_t kBlockBits = 10;
constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;  // 1024
constexpr std::size_t kMaxBlocks = 4096;  // 4M symbols; far beyond any model

struct Block {
  std::string items[kBlockSize];
};

// Lookup: an open-addressed (hash -> id+1) table, append-only. Readers
// probe with acquire loads and verify against the stored string — no lock
// on the hit path, which is the steady state (every model name is interned
// during the first moments of a run). Writers are serialized by the intern
// mutex; growth publishes a fresh table and retires the old one to a keep
// list (bounded by geometric doubling), so racing readers never touch
// freed memory.
struct Index {
  explicit Index(std::size_t n) : mask(n - 1), cells(new std::atomic<std::uint32_t>[n]) {
    for (std::size_t i = 0; i < n; ++i) {
      cells[i].store(0, std::memory_order_relaxed);
    }
  }
  const std::size_t mask;
  std::unique_ptr<std::atomic<std::uint32_t>[]> cells;  // id + 1; 0 = empty
};

struct InternTable {
  Mutex mu;  ///< serializes writers only; readers go through the atomics
  std::atomic<Block*> blocks[kMaxBlocks] = {};
  std::atomic<Index*> index;
  std::vector<std::unique_ptr<Index>> retired ARC_GUARDED_BY(mu);
  std::uint32_t count ARC_GUARDED_BY(mu) = 0;

  InternTable() ARC_NO_TSA {
    // (analysis off: constructors run single-threaded, but the guarded
    // members are initialized here without the — unnecessary — lock.)
    auto idx = std::make_unique<Index>(1024);
    index.store(idx.get(), std::memory_order_release);
    retired.push_back(std::move(idx));
    // id 0 is the empty symbol; it is never indexed (intern("") shortcuts).
    auto* block = new Block();
    blocks[0].store(block, std::memory_order_release);
    count = 1;
  }

  const std::string& text(std::uint32_t id) const {
    Block* block = blocks[id >> kBlockBits].load(std::memory_order_acquire);
    return block->items[id & (kBlockSize - 1)];
  }

  /// Lock-free; returns 0 when not (yet) present.
  std::uint32_t find(std::string_view sought, std::size_t hash) const {
    const Index* idx = index.load(std::memory_order_acquire);
    for (std::size_t i = hash & idx->mask;; i = (i + 1) & idx->mask) {
      const std::uint32_t v = idx->cells[i].load(std::memory_order_acquire);
      if (v == 0) return 0;
      if (text(v - 1) == sought) return v;
    }
  }

  std::uint32_t intern(std::string_view sought) {
    const std::size_t hash = std::hash<std::string_view>{}(sought);
    if (std::uint32_t hit = find(sought, hash)) return hit - 1;

    MutexLock lock(mu);
    // Re-check: another writer may have interned between probe and lock.
    if (std::uint32_t hit = find(sought, hash)) return hit - 1;

    const std::uint32_t id = count;
    const std::size_t block_idx = id >> kBlockBits;
    if (block_idx >= kMaxBlocks) {
      throw std::length_error("symbol intern table is full");
    }
    Block* block = blocks[block_idx].load(std::memory_order_relaxed);
    if (!block) {
      block = new Block();
      blocks[block_idx].store(block, std::memory_order_release);
    }
    std::string& stored = block->items[id & (kBlockSize - 1)];
    stored.assign(sought);
    ++count;

    Index* idx = index.load(std::memory_order_relaxed);
    if ((count + 1) * 2 > idx->mask + 1) {  // keep load factor under 0.5
      auto grown = std::make_unique<Index>((idx->mask + 1) * 2);
      for (std::uint32_t existing = 1; existing < count; ++existing) {
        insert_into(*grown, existing);
      }
      index.store(grown.get(), std::memory_order_release);
      retired.push_back(std::move(grown));
      idx = index.load(std::memory_order_relaxed);
    } else {
      insert_into(*idx, id);
    }
    return id;
  }

  void insert_into(Index& idx, std::uint32_t id) ARC_REQUIRES(mu) {
    const std::size_t hash = std::hash<std::string_view>{}(text(id));
    std::size_t i = hash & idx.mask;
    while (idx.cells[i].load(std::memory_order_relaxed) != 0) {
      i = (i + 1) & idx.mask;
    }
    idx.cells[i].store(id + 1, std::memory_order_release);
  }

  std::size_t size() {
    MutexLock lock(mu);
    return count;
  }
};

InternTable& table() {
  static InternTable t;
  return t;
}

}  // namespace

Symbol Symbol::intern(std::string_view text) {
  if (text.empty()) return Symbol();
  return Symbol(table().intern(text));
}

const std::string& Symbol::str() const { return table().text(id_); }

std::size_t Symbol::interned_count() { return table().size(); }

}  // namespace arcadia::util
