#include "util/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/error.hpp"

namespace arcadia {

void TimeSeries::append(SimTime t, double value) {
  if (!points_.empty() && t < points_.back().first) {
    throw Error("TimeSeries '" + name_ + "': non-monotonic append");
  }
  points_.emplace_back(t, value);
}

std::optional<SimTime> TimeSeries::first_time() const {
  if (points_.empty()) return std::nullopt;
  return points_.front().first;
}

std::optional<SimTime> TimeSeries::last_time() const {
  if (points_.empty()) return std::nullopt;
  return points_.back().first;
}

double TimeSeries::last_value() const {
  return points_.empty() ? 0.0 : points_.back().second;
}

double TimeSeries::value_at(SimTime t, double fallback) const {
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime tt, const auto& p) { return tt < p.first; });
  if (it == points_.begin()) return fallback;
  return std::prev(it)->second;
}

double TimeSeries::mean_over(SimTime from, SimTime to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t < from || t > to) continue;
    sum += v;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::max_over(SimTime from, SimTime to) const {
  double best = 0.0;
  bool any = false;
  for (const auto& [t, v] : points_) {
    if (t < from || t > to) continue;
    best = any ? std::max(best, v) : v;
    any = true;
  }
  return best;
}

double TimeSeries::min_over(SimTime from, SimTime to) const {
  double best = 0.0;
  bool any = false;
  for (const auto& [t, v] : points_) {
    if (t < from || t > to) continue;
    best = any ? std::min(best, v) : v;
    any = true;
  }
  return best;
}

double TimeSeries::fraction_above(double threshold, SimTime from,
                                  SimTime to) const {
  if (points_.empty() || to <= from) return 0.0;
  double above = 0.0;
  // Sample-and-hold: each sample's value applies until the next sample.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    SimTime seg_start = std::max(points_[i].first, from);
    SimTime seg_end = (i + 1 < points_.size()) ? points_[i + 1].first : to;
    seg_end = std::min(seg_end, to);
    if (seg_end <= seg_start) continue;
    if (points_[i].second > threshold) {
      above += (seg_end - seg_start).as_seconds();
    }
  }
  return above / (to - from).as_seconds();
}

SimTime TimeSeries::first_crossing(double threshold) const {
  for (const auto& [t, v] : points_) {
    if (v >= threshold) return t;
  }
  return SimTime::infinity();
}

TimeSeries TimeSeries::windowed_mean(SimTime window, SimTime step, SimTime from,
                                     SimTime to) const {
  TimeSeries out(name_);
  if (step <= SimTime::zero()) return out;
  std::size_t lo = 0;  // first sample with time > t - window
  std::size_t hi = 0;  // first sample with time > t
  double sum = 0.0;
  bool have_value = false;
  double held = 0.0;
  for (SimTime t = from; t <= to; t += step) {
    while (hi < points_.size() && points_[hi].first <= t) {
      sum += points_[hi].second;
      ++hi;
    }
    while (lo < hi && points_[lo].first <= t - window) {
      sum -= points_[lo].second;
      ++lo;
    }
    const std::size_t n = hi - lo;
    if (n > 0) {
      held = sum / static_cast<double>(n);
      have_value = true;
    }
    if (have_value) out.append(t, held);
  }
  return out;
}

TimeSeries TimeSeries::resample(SimTime bucket) const {
  TimeSeries out(name_);
  if (points_.empty() || bucket <= SimTime::zero()) return out;
  SimTime bucket_start = points_.front().first;
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : points_) {
    while (t >= bucket_start + bucket) {
      if (n > 0) {
        out.append(bucket_start, sum / static_cast<double>(n));
      }
      bucket_start += bucket;
      sum = 0.0;
      n = 0;
    }
    sum += v;
    ++n;
  }
  if (n > 0) out.append(bucket_start, sum / static_cast<double>(n));
  return out;
}

}  // namespace arcadia
