// Strong unit types shared across Arcadia: simulated time, data sizes and
// bandwidths. Keeping these as distinct types (rather than bare doubles)
// prevents the classic seconds-vs-microseconds and bits-vs-bytes mixups that
// plague flow-level network simulators.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace arcadia {

/// Simulated time, an integer count of microseconds since simulation start.
/// Integer representation keeps the event queue exact (no floating-point
/// clock drift over an 1800-second experiment).
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime micros(std::int64_t us) { return SimTime{us}; }
  static constexpr SimTime millis(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e3)};
  }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr SimTime minutes(double m) { return seconds(m * 60.0); }
  /// A time beyond any experiment horizon; used as "never".
  static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double as_millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr bool is_infinite() const { return *this == infinity(); }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.us_ + b.us_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.us_ - b.us_};
  }
  constexpr SimTime& operator+=(SimTime o) {
    us_ += o.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    us_ -= o.us_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(a.us_) * k)};
  }
  friend constexpr SimTime operator*(double k, SimTime a) { return a * k; }
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }

 private:
  explicit constexpr SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// A quantity of data in bytes (requests, responses, monitoring messages).
class DataSize {
 public:
  constexpr DataSize() = default;
  static constexpr DataSize zero() { return DataSize{0.0}; }
  static constexpr DataSize bytes(double b) { return DataSize{b}; }
  static constexpr DataSize kilobytes(double kb) { return DataSize{kb * 1024.0}; }
  static constexpr DataSize megabytes(double mb) {
    return DataSize{mb * 1024.0 * 1024.0};
  }

  constexpr double as_bytes() const { return bytes_; }
  constexpr double as_kilobytes() const { return bytes_ / 1024.0; }
  constexpr double as_bits() const { return bytes_ * 8.0; }

  friend constexpr auto operator<=>(DataSize, DataSize) = default;
  friend constexpr DataSize operator+(DataSize a, DataSize b) {
    return DataSize{a.bytes_ + b.bytes_};
  }
  friend constexpr DataSize operator-(DataSize a, DataSize b) {
    return DataSize{a.bytes_ - b.bytes_};
  }
  friend constexpr DataSize operator*(DataSize a, double k) {
    return DataSize{a.bytes_ * k};
  }
  constexpr DataSize& operator+=(DataSize o) {
    bytes_ += o.bytes_;
    return *this;
  }

 private:
  explicit constexpr DataSize(double b) : bytes_(b) {}
  double bytes_ = 0.0;
};

/// Link or flow bandwidth in bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth zero() { return Bandwidth{0.0}; }
  static constexpr Bandwidth bps(double v) { return Bandwidth{v}; }
  static constexpr Bandwidth kbps(double v) { return Bandwidth{v * 1e3}; }
  static constexpr Bandwidth mbps(double v) { return Bandwidth{v * 1e6}; }
  static constexpr Bandwidth infinity() {
    return Bandwidth{std::numeric_limits<double>::infinity()};
  }

  constexpr double as_bps() const { return bps_; }
  constexpr double as_kbps() const { return bps_ / 1e3; }
  constexpr double as_mbps() const { return bps_ / 1e6; }

  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) {
    return Bandwidth{a.bps_ + b.bps_};
  }
  friend constexpr Bandwidth operator-(Bandwidth a, Bandwidth b) {
    return Bandwidth{a.bps_ - b.bps_};
  }
  friend constexpr Bandwidth operator*(Bandwidth a, double k) {
    return Bandwidth{a.bps_ * k};
  }
  friend constexpr Bandwidth operator/(Bandwidth a, double k) {
    return Bandwidth{a.bps_ / k};
  }

 private:
  explicit constexpr Bandwidth(double v) : bps_(v) {}
  double bps_ = 0.0;
};

/// Time to move `size` at `rate`; SimTime::infinity() when the rate is zero.
inline SimTime transfer_time(DataSize size, Bandwidth rate) {
  if (rate.as_bps() <= 0.0) return SimTime::infinity();
  return SimTime::seconds(size.as_bits() / rate.as_bps());
}

std::string inline to_string(SimTime t) {
  return std::to_string(t.as_seconds()) + "s";
}
std::string inline to_string(Bandwidth b) {
  return std::to_string(b.as_mbps()) + "Mbps";
}
std::string inline to_string(DataSize d) {
  return std::to_string(d.as_kilobytes()) + "KB";
}

}  // namespace arcadia
