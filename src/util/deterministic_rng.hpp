// Deterministic, seedable random number generation — the single allowed
// randomness source in the tree (arclint's entropy rule bans <random>,
// rand(), std::random_device, etc. everywhere else). Experiments must be a
// pure function of (config, seed) so control and repair runs see identical
// workloads — the paper's "seeding the clients so that the size of requests
// and responses occurred in the same sequence in both experiments". The
// fault plane draws from forked streams of the same generators, extending
// the contract to injected failures: same fault seed => bit-identical runs.
#pragma once

#include <cmath>
#include <cstdint>

namespace arcadia {

/// SplitMix64: used to expand a single 64-bit seed into the larger state of
/// Xoshiro256**. Reference: Steele, Lea, Flood (2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies enough of UniformRandomBitGenerator to feed <random> if needed,
/// but Arcadia's own distribution helpers below avoid libstdc++'s
/// implementation-defined distributions for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Exponential variate with the given mean (inter-arrival times).
  double exponential(double mean) {
    // 1 - uniform() is in (0, 1]; log of it is finite.
    return -mean * std::log(1.0 - uniform());
  }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal variate parameterized by the *target* mean and a shape
  /// sigma; used for response-size jitter around the paper's 20 KB mean.
  double lognormal_with_mean(double mean, double sigma) {
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(mu + sigma * normal());
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// The complete generator position — the four Xoshiro words plus the
  /// Box-Muller spare — so the durability plane can checkpoint a stream
  /// mid-run and a restored run resumes the exact variate sequence.
  struct State {
    std::uint64_t s[4] = {};
    bool have_spare = false;
    double spare = 0.0;

    friend bool operator==(const State&, const State&) = default;
  };

  State save_state() const {
    return State{{state_[0], state_[1], state_[2], state_[3]}, have_spare_,
                 spare_};
  }

  void restore_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    have_spare_ = st.have_spare;
    spare_ = st.spare;
  }

  /// Derive an independent child generator; used to give each client its own
  /// stream so adding a client does not perturb the others' sequences, and
  /// to give each fault seam its own stream so monitoring faults do not
  /// perturb repair faults.
  Rng fork(std::uint64_t stream_id) {
    SplitMix64 sm(next() ^ (0xA0761D6478BD642FULL * (stream_id + 1)));
    return Rng(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace arcadia
