// Minimal leveled logger. The adaptation framework narrates repairs through
// this; experiments usually run with level Warn to keep bench output clean,
// examples run with Info to show the repair timeline.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

#include "util/annotations.hpp"

namespace arcadia {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

const char* to_string(LogLevel level);

/// Process-wide logger with a pluggable sink. Thread-safe: the sink is
/// invoked under a mutex, so interleaved messages never shear, and the
/// level is atomic so the filter check stays lock-free on the fast path
/// (and set_level from a test thread never races concurrent loggers).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Replace the output sink (default writes to stderr). Used by tests to
  /// capture log output.
  void set_sink(Sink sink);

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::Warn};
  util::Mutex mutex_;
  Sink sink_ ARC_GUARDED_BY(mutex_);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace arcadia

#define ARC_LOG(level)                                    \
  if (!::arcadia::Logger::instance().enabled(level)) {    \
  } else                                                  \
    ::arcadia::detail::LogLine(level)

#define ARC_TRACE ARC_LOG(::arcadia::LogLevel::Trace)
#define ARC_DEBUG ARC_LOG(::arcadia::LogLevel::Debug)
#define ARC_INFO ARC_LOG(::arcadia::LogLevel::Info)
#define ARC_WARN ARC_LOG(::arcadia::LogLevel::Warn)
#define ARC_ERROR ARC_LOG(::arcadia::LogLevel::Error)
