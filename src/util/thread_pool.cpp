#include "util/thread_pool.hpp"

#include <algorithm>

namespace arcadia {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      // Loop form (no predicate lambda): the guarded reads stay in this
      // function's body where the analysis can see the lock is held.
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // only reachable when stopping
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Chunk into at most one contiguous block per worker: cheaper than one
  // future per index, and a throwing iteration abandons only the rest of
  // its own chunk.
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += per_chunk) {
    const std::size_t end = std::min(n, begin + per_chunk);
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Join every future before letting any exception unwind: once we return,
  // no worker may still be touching `fn` or the caller's captures. The
  // lowest-indexed chunk's exception wins, deterministically.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace arcadia
