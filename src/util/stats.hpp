// Streaming and batch statistics used by gauges, experiment reports and
// benches.
#pragma once

#include <cstddef>
#include <vector>

namespace arcadia {

/// Numerically-stable streaming mean/variance (Welford). O(1) memory; used
/// by gauges that cannot afford to retain samples.
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary over retained samples; supports percentiles. Used by the
/// experiment reports (e.g. p95 latency) and the repair-time breakdown.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Exponentially-weighted moving average; the smoothing primitive behind
/// EWMA gauges.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  bool initialized_ = false;
  double value_ = 0.0;
};

}  // namespace arcadia
