// Builds the architectural model (Figure 2) that mirrors a running
// testbed: clients, server groups with representations holding their
// replicas, one request/reply connector per client, and the initial
// property values. Element names equal runtime entity names — the
// model<->runtime correspondence the translator relies on.
#pragma once

#include <memory>

#include "model/system.hpp"
#include "repair/style_ops.hpp"
#include "sim/scenario.hpp"

namespace arcadia::rt {

struct ModelBuildOptions {
  repair::StyleConventions conventions;
  /// Initial maxLatency property on every client (task-layer profile).
  SimTime max_latency = SimTime::seconds(2);
  /// Initial bandwidth property on client roles.
  Bandwidth initial_bandwidth = Bandwidth::mbps(10);
};

/// Construct the model for a built testbed. Connector names follow
/// "Conn_<client>" and carry a clientSide/serverSide role pair.
std::unique_ptr<model::System> build_grid_model(const sim::Testbed& testbed,
                                                const ModelBuildOptions& options);

}  // namespace arcadia::rt
