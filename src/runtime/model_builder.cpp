#include "runtime/model_builder.hpp"

#include "model/types.hpp"

namespace arcadia::rt {

namespace cs = model::cs;

std::unique_ptr<model::System> build_grid_model(
    const sim::Testbed& testbed, const ModelBuildOptions& options) {
  const sim::GridApp& app = *testbed.app;
  const sim::Topology& topo = *testbed.topo;
  const repair::StyleConventions& conv = options.conventions;
  auto system = std::make_unique<model::System>("GridStorage");

  // Server groups with their replicas as representation members.
  for (sim::GroupIdx g = 0; g < static_cast<sim::GroupIdx>(app.group_count());
       ++g) {
    model::Component& group =
        system->add_component(app.group_name(g), cs::kServerGroupT);
    group.set_property(cs::kPropLoad, model::PropertyValue(0.0));
    group.set_property(cs::kPropUtilization, model::PropertyValue(0.0));
    group.set_property(cs::kPropLocation,
                       model::PropertyValue(topo.node_name(app.group_node(g))));
    group.add_port(conv.provide_port, cs::kProvidePortT);
    std::int64_t replicas = 0;
    model::System& rep = group.representation();
    for (sim::ServerIdx s : app.active_servers(g)) {
      model::Component& server =
          rep.add_component(app.server_name(s), cs::kServerT);
      server.set_property(cs::kPropIsActive, model::PropertyValue(true));
      server.set_property(cs::kPropLocation,
                          model::PropertyValue(topo.node_name(app.server_node(s))));
      ++replicas;
    }
    group.set_property(cs::kPropReplication, model::PropertyValue(replicas));
  }

  // Clients, each with a dedicated request/reply connector.
  for (sim::ClientIdx c = 0; c < static_cast<sim::ClientIdx>(app.client_count());
       ++c) {
    const std::string client_name = app.client_name(c);
    model::Component& client =
        system->add_component(client_name, cs::kClientT);
    client.set_property(cs::kPropAvgLatency, model::PropertyValue(0.0));
    client.set_property(cs::kPropMaxLatency,
                        model::PropertyValue(options.max_latency.as_seconds()));
    client.set_property(cs::kPropLocation,
                        model::PropertyValue(topo.node_name(app.client_node(c))));
    client.add_port(conv.request_port, cs::kRequestPortT);

    const std::string conn_name = "Conn_" + client_name;
    model::Connector& conn = system->add_connector(conn_name, cs::kConnT);
    model::Role& client_role = conn.add_role(conv.client_role, cs::kClientRoleT);
    client_role.set_property(
        cs::kPropBandwidth,
        model::PropertyValue(options.initial_bandwidth.as_bps()));
    conn.add_role(conv.server_role, cs::kServerRoleT);

    system->attach(model::Attachment{client_name, conv.request_port, conn_name,
                                     conv.client_role});
    const sim::GroupIdx g = app.client_group(c);
    if (g != sim::kNoGroup) {
      system->attach(model::Attachment{app.group_name(g), conv.provide_port,
                                       conn_name, conv.server_role});
      client.set_property(conv.bound_to_prop,
                          model::PropertyValue(app.group_name(g)));
    }
  }
  return system;
}

}  // namespace arcadia::rt
