// The environment manager: exactly the operator/query set of the paper's
// Table 1, executed against the (simulated) runtime system. Each call
// reports a modeled cost — the RMI round trip the paper's Java
// implementation paid, or the Remos collection delay for remos_get_flow.
//
//   createReqQueue()            add a logical request queue
//   findServer(cli, bw)         spare server with >= bw to the client
//   moveClient(cli, newQ)       retarget a client's requests
//   connectServer(srv, q)       re-home a server onto a queue
//   activateServer(srv)         server starts pulling requests
//   deactivateServer(srv)       server stops pulling requests
//   remos_get_flow(a, b)        predicted bandwidth between two machines
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "remos/remos.hpp"
#include "sim/app.hpp"
#include "util/error.hpp"

namespace arcadia::rt {

struct EnvironmentCosts {
  /// One RMI round trip to a change operation.
  SimTime rmi_call = SimTime::millis(120);
  /// Activation involves process start-up on the server machine.
  SimTime activate_extra = SimTime::millis(400);
};

struct EnvironmentStats {
  std::uint64_t ops = 0;
  std::uint64_t queries = 0;
  std::uint64_t moves = 0;
  std::uint64_t activations = 0;
  std::uint64_t deactivations = 0;
};

class EnvironmentManager {
 public:
  virtual ~EnvironmentManager() = default;

  virtual std::string createReqQueue(const std::string& name) = 0;
  /// Best spare server with at least `bw_thresh` predicted bandwidth to the
  /// client's machine; nullopt when none.
  virtual std::optional<std::string> findServer(const std::string& client,
                                                Bandwidth bw_thresh) = 0;
  virtual void moveClient(const std::string& client,
                          const std::string& queue) = 0;
  virtual void connectServer(const std::string& server,
                             const std::string& queue) = 0;
  virtual void activateServer(const std::string& server) = 0;
  virtual void deactivateServer(const std::string& server) = 0;
  virtual Bandwidth remos_get_flow(const std::string& src_machine,
                                   const std::string& dst_machine) = 0;

  /// Modeled latency of the most recent call.
  virtual SimTime last_op_cost() const = 0;
};

/// Environment manager over the simulated grid application. Queue names
/// are server-group names (each group owns one logical queue, as in
/// Figure 2); machine names are topology node names.
class SimEnvironmentManager : public EnvironmentManager {
 public:
  SimEnvironmentManager(sim::GridApp& app, const sim::Topology& topo,
                        remos::RemosService& remos,
                        EnvironmentCosts costs = {});

  std::string createReqQueue(const std::string& name) override;
  std::optional<std::string> findServer(const std::string& client,
                                        Bandwidth bw_thresh) override;
  void moveClient(const std::string& client, const std::string& queue) override;
  void connectServer(const std::string& server,
                     const std::string& queue) override;
  void activateServer(const std::string& server) override;
  void deactivateServer(const std::string& server) override;
  Bandwidth remos_get_flow(const std::string& src_machine,
                           const std::string& dst_machine) override;

  SimTime last_op_cost() const override { return last_cost_; }
  const EnvironmentStats& stats() const { return stats_; }
  /// The modeled cost table — what the repair planner prices Table-1
  /// operations with before enacting them.
  const EnvironmentCosts& costs() const { return costs_; }

  /// Servers recruited by repairs since start (release candidates for the
  /// trim repair).
  std::vector<std::string> recruited_servers() const;
  void note_recruited(const std::string& server);
  void note_released(const std::string& server);

 private:
  sim::ClientIdx client_or_throw(const std::string& name) const;
  sim::ServerIdx server_or_throw(const std::string& name) const;
  sim::GroupIdx group_or_throw(const std::string& name) const;

  sim::GridApp& app_;
  const sim::Topology& topo_;
  remos::RemosService& remos_;
  EnvironmentCosts costs_;
  SimTime last_cost_;
  EnvironmentStats stats_;
  std::vector<std::string> recruited_;
};

}  // namespace arcadia::rt
