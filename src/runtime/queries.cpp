#include "runtime/queries.hpp"

namespace arcadia::rt {

SimRuntimeQueries::SimRuntimeQueries(sim::GridApp& app,
                                     SimEnvironmentManager& env,
                                     remos::RemosService& remos)
    : app_(app), env_(env), remos_(remos) {}

std::optional<std::string> SimRuntimeQueries::find_good_sgrp(
    const std::string& client, Bandwidth min_bw) {
  const sim::ClientIdx c = app_.find_client(client);
  if (c < 0) return std::nullopt;
  const sim::GroupIdx current = app_.client_group(c);
  std::optional<std::string> best;
  Bandwidth best_bw = min_bw;
  for (sim::GroupIdx g = 0; g < static_cast<sim::GroupIdx>(app_.group_count());
       ++g) {
    if (g == current) continue;
    if (app_.active_servers(g).empty()) continue;
    // Bandwidth in the direction the (large) responses flow.
    Bandwidth bw = remos_.get_flow(app_.group_node(g), app_.client_node(c));
    charge(remos_.last_query_cost());
    if (bw >= best_bw) {
      best_bw = bw;
      best = app_.group_name(g);
    }
  }
  return best;
}

std::optional<std::string> SimRuntimeQueries::find_spare_server(
    const std::string& group, Bandwidth min_bw) {
  const sim::GroupIdx g = app_.find_group(group);
  if (g == sim::kNoGroup) return std::nullopt;
  // Per Table 1, findServer checks bandwidth between the spare and a
  // client; use the group's clients (fall back to any client when the
  // group is currently empty).
  std::vector<sim::ClientIdx> clients = app_.clients_assigned(g);
  if (clients.empty() && app_.client_count() > 0) clients.push_back(0);
  if (clients.empty()) return std::nullopt;
  std::optional<std::string> found =
      env_.findServer(app_.client_name(clients.front()), min_bw);
  charge(env_.last_op_cost());
  return found;
}

std::optional<std::string> SimRuntimeQueries::find_less_loaded_sgrp(
    const std::string& client, const std::string& exclude, Bandwidth min_bw,
    double improvement) {
  const sim::ClientIdx c = app_.find_client(client);
  const sim::GroupIdx ex = app_.find_group(exclude);
  if (c < 0 || ex == sim::kNoGroup) return std::nullopt;
  const double exclude_len = static_cast<double>(app_.queue_length(ex));
  std::optional<std::string> best;
  double best_len = exclude_len - improvement;
  for (sim::GroupIdx g = 0; g < static_cast<sim::GroupIdx>(app_.group_count());
       ++g) {
    if (g == ex) continue;
    if (app_.active_servers(g).empty()) continue;
    const double len = static_cast<double>(app_.queue_length(g));
    if (len > best_len) continue;
    Bandwidth bw = remos_.get_flow(app_.group_node(g), app_.client_node(c));
    charge(remos_.last_query_cost());
    if (bw < min_bw) continue;
    best_len = len;
    best = app_.group_name(g);
  }
  return best;
}

std::optional<std::string> SimRuntimeQueries::find_removable_server(
    const std::string& group) {
  const sim::GroupIdx g = app_.find_group(group);
  if (g == sim::kNoGroup) return std::nullopt;
  charge(SimTime::millis(20));
  // Only dynamically recruited servers are release candidates; prefer the
  // most recently recruited one still serving this group.
  const auto recruited = env_.recruited_servers();
  for (auto it = recruited.rbegin(); it != recruited.rend(); ++it) {
    sim::ServerIdx s = app_.find_server(*it);
    if (s >= 0 && app_.server_group(s) == g && app_.server_active(s)) {
      return *it;
    }
  }
  return std::nullopt;
}

SimTime SimRuntimeQueries::drain_query_cost() {
  SimTime out = accumulated_;
  accumulated_ = SimTime::zero();
  return out;
}

}  // namespace arcadia::rt
