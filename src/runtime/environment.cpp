#include "runtime/environment.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace arcadia::rt {

SimEnvironmentManager::SimEnvironmentManager(sim::GridApp& app,
                                             const sim::Topology& topo,
                                             remos::RemosService& remos,
                                             EnvironmentCosts costs)
    : app_(app), topo_(topo), remos_(remos), costs_(costs) {}

sim::ClientIdx SimEnvironmentManager::client_or_throw(
    const std::string& name) const {
  sim::ClientIdx c = app_.find_client(name);
  if (c < 0) throw RuntimeOpError("unknown client '" + name + "'");
  return c;
}

sim::ServerIdx SimEnvironmentManager::server_or_throw(
    const std::string& name) const {
  sim::ServerIdx s = app_.find_server(name);
  if (s < 0) throw RuntimeOpError("unknown server '" + name + "'");
  return s;
}

sim::GroupIdx SimEnvironmentManager::group_or_throw(
    const std::string& name) const {
  sim::GroupIdx g = app_.find_group(name);
  if (g == sim::kNoGroup) throw RuntimeOpError("unknown queue '" + name + "'");
  return g;
}

std::string SimEnvironmentManager::createReqQueue(const std::string& name) {
  ++stats_.ops;
  last_cost_ = costs_.rmi_call;
  if (app_.find_group(name) != sim::kNoGroup) {
    throw RuntimeOpError("queue '" + name + "' already exists");
  }
  app_.create_group(name);
  return name;
}

std::optional<std::string> SimEnvironmentManager::findServer(
    const std::string& client, Bandwidth bw_thresh) {
  ++stats_.queries;
  const sim::ClientIdx c = client_or_throw(client);
  SimTime cost = costs_.rmi_call;
  std::optional<std::string> best;
  Bandwidth best_bw = bw_thresh;
  for (sim::ServerIdx s : app_.spare_servers()) {
    Bandwidth bw = remos_.get_flow(app_.server_node(s), app_.client_node(c));
    cost += remos_.last_query_cost();
    if (bw >= best_bw) {
      best_bw = bw;
      best = app_.server_name(s);
    }
  }
  last_cost_ = cost;
  return best;
}

void SimEnvironmentManager::moveClient(const std::string& client,
                                       const std::string& queue) {
  ++stats_.ops;
  ++stats_.moves;
  last_cost_ = costs_.rmi_call;
  app_.move_client(client_or_throw(client), group_or_throw(queue));
  ARC_DEBUG << "env: moveClient(" << client << ", " << queue << ")";
}

void SimEnvironmentManager::connectServer(const std::string& server,
                                          const std::string& queue) {
  ++stats_.ops;
  last_cost_ = costs_.rmi_call;
  app_.connect_server(server_or_throw(server), group_or_throw(queue));
}

void SimEnvironmentManager::activateServer(const std::string& server) {
  ++stats_.ops;
  ++stats_.activations;
  last_cost_ = costs_.rmi_call + costs_.activate_extra;
  app_.activate_server(server_or_throw(server));
  ARC_INFO << "env: activateServer(" << server << ")";
}

void SimEnvironmentManager::deactivateServer(const std::string& server) {
  ++stats_.ops;
  ++stats_.deactivations;
  last_cost_ = costs_.rmi_call;
  app_.deactivate_server(server_or_throw(server));
  ARC_INFO << "env: deactivateServer(" << server << ")";
}

Bandwidth SimEnvironmentManager::remos_get_flow(const std::string& src_machine,
                                                const std::string& dst_machine) {
  ++stats_.queries;
  const sim::NodeId src = topo_.find_node(src_machine);
  const sim::NodeId dst = topo_.find_node(dst_machine);
  if (src == sim::kNoNode || dst == sim::kNoNode) {
    throw RuntimeOpError("remos_get_flow: unknown machine '" +
                         (src == sim::kNoNode ? src_machine : dst_machine) +
                         "'");
  }
  Bandwidth bw = remos_.get_flow(src, dst);
  last_cost_ = remos_.last_query_cost();
  return bw;
}

std::vector<std::string> SimEnvironmentManager::recruited_servers() const {
  return recruited_;
}

void SimEnvironmentManager::note_recruited(const std::string& server) {
  if (std::find(recruited_.begin(), recruited_.end(), server) ==
      recruited_.end()) {
    recruited_.push_back(server);
  }
}

void SimEnvironmentManager::note_released(const std::string& server) {
  recruited_.erase(std::remove(recruited_.begin(), recruited_.end(), server),
                   recruited_.end());
}

}  // namespace arcadia::rt
