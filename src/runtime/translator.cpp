#include "runtime/translator.hpp"

#include "util/log.hpp"

namespace arcadia::rt {

SimTranslator::SimTranslator(SimEnvironmentManager& env,
                             repair::StyleConventions conventions)
    : env_(env), conv_(conventions) {}

SimTime SimTranslator::apply(const std::vector<model::OpRecord>& records) {
  SimTime cost = SimTime::zero();
  for (const model::OpRecord& op : records) {
    ++stats_.records_seen;
    switch (op.kind) {
      case model::OpKind::AddComponent: {
        if (op.scope.empty()) {
          ++stats_.ignored;
          break;
        }
        // A server component appeared inside a group's representation:
        // recruit the matching runtime server into the group's queue.
        const std::string& group = op.scope.front();
        env_.connectServer(op.element, group);
        cost += env_.last_op_cost();
        env_.activateServer(op.element);
        cost += env_.last_op_cost();
        env_.note_recruited(op.element);
        stats_.runtime_ops += 2;
        break;
      }
      case model::OpKind::RemoveComponent: {
        if (op.scope.empty()) {
          ++stats_.ignored;
          break;
        }
        env_.deactivateServer(op.element);
        cost += env_.last_op_cost();
        env_.note_released(op.element);
        ++stats_.runtime_ops;
        break;
      }
      case model::OpKind::SetProperty: {
        if (op.property == conv_.bound_to_prop && op.value.is_string()) {
          env_.moveClient(op.element, op.value.as_string());
          cost += env_.last_op_cost();
          ++stats_.runtime_ops;
        } else {
          ++stats_.ignored;
        }
        break;
      }
      case model::OpKind::Attach:
      case model::OpKind::Detach:
        // Structural halves of move(); the boundTo property carries the
        // runtime action.
        ++stats_.ignored;
        break;
      default:
        ++stats_.ignored;
        break;
    }
  }
  ARC_DEBUG << "translator: applied " << records.size() << " record(s), cost "
            << cost.as_seconds() << "s";
  return cost;
}

SimTime SimTranslator::estimate(
    const std::vector<model::OpRecord>& records) const {
  const EnvironmentCosts& costs = env_.costs();
  SimTime cost = SimTime::zero();
  for (const model::OpRecord& op : records) {
    switch (op.kind) {
      case model::OpKind::AddComponent:
        if (!op.scope.empty()) {
          // connectServer + activateServer (process start-up included).
          cost += costs.rmi_call + costs.rmi_call + costs.activate_extra;
        }
        break;
      case model::OpKind::RemoveComponent:
        if (!op.scope.empty()) cost += costs.rmi_call;  // deactivateServer
        break;
      case model::OpKind::SetProperty:
        if (op.property == conv_.bound_to_prop && op.value.is_string()) {
          cost += costs.rmi_call;  // moveClient
        }
        break;
      default:
        break;
    }
  }
  return cost;
}

}  // namespace arcadia::rt
