// The translator (Figure 1, item 5): interprets committed model-layer
// changes as operations on the running system. The correspondence is the
// "hand-tailored support for translating APIs in the Model Layer to ones
// in the Runtime Layer" of Section 4 — here made explicit as a rule table:
//
//   model op                                   -> runtime operations
//   ------------------------------------------------------------------
//   AddComponent srv in ServerGrpX/            -> connectServer(srv, X);
//                                                 activateServer(srv)
//   RemoveComponent srv in ServerGrpX/         -> deactivateServer(srv)
//   SetProperty client.boundTo = ServerGrpX    -> moveClient(client, X)
//   Attach/Detach (group.provide <-> conn)     -> (covered by boundTo)
//   SetProperty anything else                  -> no runtime effect
#pragma once

#include <cstdint>

#include "repair/plan.hpp"
#include "repair/style_ops.hpp"
#include "runtime/environment.hpp"

namespace arcadia::rt {

struct TranslatorStats {
  std::uint64_t records_seen = 0;
  std::uint64_t runtime_ops = 0;
  std::uint64_t ignored = 0;
};

class SimTranslator : public repair::Translator {
 public:
  SimTranslator(SimEnvironmentManager& env,
                repair::StyleConventions conventions = {});

  SimTime apply(const std::vector<model::OpRecord>& records) override;

  /// The planner's Table-1 estimate: the same rule table as apply(), priced
  /// from the environment's cost model without touching the runtime.
  SimTime estimate(const std::vector<model::OpRecord>& records) const override;

  const TranslatorStats& stats() const { return stats_; }

 private:
  SimEnvironmentManager& env_;
  repair::StyleConventions conv_;
  TranslatorStats stats_;
};

}  // namespace arcadia::rt
