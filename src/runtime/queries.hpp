// repair::RuntimeQueries implemented against the environment manager and
// Remos — the bridge the repair scripts' query functions (findGoodSGrp,
// findServer, ...) call through. Accumulates the modeled latency of every
// query so the repair engine can charge it to the repair duration.
#pragma once

#include "repair/runtime_queries.hpp"
#include "runtime/environment.hpp"

namespace arcadia::rt {

class SimRuntimeQueries : public repair::RuntimeQueries {
 public:
  SimRuntimeQueries(sim::GridApp& app, SimEnvironmentManager& env,
                    remos::RemosService& remos);

  std::optional<std::string> find_good_sgrp(const std::string& client,
                                            Bandwidth min_bw) override;
  std::optional<std::string> find_spare_server(const std::string& group,
                                               Bandwidth min_bw) override;
  std::optional<std::string> find_less_loaded_sgrp(const std::string& client,
                                                   const std::string& exclude,
                                                   Bandwidth min_bw,
                                                   double improvement) override;
  std::optional<std::string> find_removable_server(
      const std::string& group) override;

  SimTime drain_query_cost() override;

 private:
  void charge(SimTime cost) { accumulated_ += cost; }

  sim::GridApp& app_;
  SimEnvironmentManager& env_;
  remos::RemosService& remos_;
  SimTime accumulated_;
};

}  // namespace arcadia::rt
