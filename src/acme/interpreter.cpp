#include "acme/interpreter.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace arcadia::acme {

Interpreter::Interpreter(const model::System& system, const Script& script)
    : system_(system), script_(script) {
  // Bridge element.method(args) calls to registered style operators.
  method_bridge_ = [this](const ElementRef& target, util::Symbol name,
                          std::vector<EvalValue>& args,
                          EvalContext&) -> EvalValue {
    const OperatorFn* op = operators_.find(name);
    if (!op) {
      throw ScriptError("unknown style operator '" + name.str() +
                        "' on element '" + target.name() + "'");
    }
    if (!txn_) {
      throw ScriptError("operator '" + name.str() +
                        "' invoked outside a repair transaction");
    }
    return (*op)(target, args, *txn_);
  };

  // Tactics are callable as functions from strategy bodies.
  for (const TacticDecl& tactic : script_.tactics) {
    const TacticDecl* decl = &tactic;
    functions_.insert_or_assign(
        util::Symbol::intern(tactic.name),
        [this, decl](std::vector<EvalValue>& args, EvalContext&) -> EvalValue {
          if (!txn_) {
            throw ScriptError("tactic '" + decl->name +
                              "' invoked outside a repair transaction");
          }
          return call_tactic(*decl, args, *txn_, trace_);
        });
  }
}

void Interpreter::register_operator(const std::string& name, OperatorFn fn) {
  operators_.insert_or_assign(util::Symbol::intern(name), std::move(fn));
}

void Interpreter::register_function(const std::string& name, ExprFn fn) {
  functions_.insert_or_assign(util::Symbol::intern(name), std::move(fn));
}

void Interpreter::bind_global(const std::string& name, EvalValue value) {
  globals_.insert_or_assign(util::Symbol::intern(name), std::move(value));
}

EvalContext Interpreter::make_root_context() {
  EvalContext ctx(system_);
  ctx.set_functions(&functions_);
  ctx.set_method_handler(&method_bridge_);
  for (const auto& e : globals_) ctx.bind(e.key, e.value);
  return ctx;
}

StrategyOutcome Interpreter::run_strategy(const std::string& name,
                                          std::vector<EvalValue> args,
                                          model::Transaction& txn) {
  const StrategyDecl* decl = script_.find_strategy(name);
  if (!decl) throw ScriptError("unknown strategy '" + name + "'");
  if (decl->params.size() != args.size()) {
    throw ScriptError("strategy '" + name + "' expects " +
                      std::to_string(decl->params.size()) + " argument(s), got " +
                      std::to_string(args.size()));
  }

  StrategyOutcome outcome;
  txn_ = &txn;
  trace_ = &outcome.tactics_run;
  spans_ = &outcome.spans;
  EvalContext root = make_root_context();
  EvalContext scope = root.child();
  for (std::size_t i = 0; i < args.size(); ++i) {
    scope.bind(decl->params[i].name, args[i]);
  }
  try {
    exec_block(*decl->body, scope);
    // Falling off the end without `commit repair` is an implicit abort: the
    // strategy made no decision.
    outcome.aborted = true;
    outcome.abort_reason = "NoCommit";
  } catch (const CommitSignal&) {
    outcome.committed = true;
  } catch (const AbortSignal& abort) {
    outcome.aborted = true;
    outcome.abort_reason = abort.reason;
  } catch (const ReturnSignal&) {
    outcome.aborted = true;
    outcome.abort_reason = "ReturnWithoutCommit";
  } catch (...) {
    txn_ = nullptr;
    trace_ = nullptr;
    spans_ = nullptr;
    throw;
  }
  txn_ = nullptr;
  trace_ = nullptr;
  spans_ = nullptr;
  return outcome;
}

bool Interpreter::run_tactic(const std::string& name,
                             std::vector<EvalValue> args,
                             model::Transaction& txn) {
  const TacticDecl* decl = script_.find_tactic(name);
  if (!decl) throw ScriptError("unknown tactic '" + name + "'");
  txn_ = &txn;
  trace_ = nullptr;
  EvalValue result;
  try {
    result = call_tactic(*decl, args, txn, nullptr);
  } catch (...) {
    txn_ = nullptr;
    throw;
  }
  txn_ = nullptr;
  return result.is_bool() && result.as_bool();
}

EvalValue Interpreter::call_tactic(
    const TacticDecl& tactic, std::vector<EvalValue>& args,
    model::Transaction& txn,
    std::vector<std::pair<std::string, bool>>* trace) {
  if (tactic.params.size() != args.size()) {
    throw ScriptError("tactic '" + tactic.name + "' expects " +
                      std::to_string(tactic.params.size()) +
                      " argument(s), got " + std::to_string(args.size()));
  }
  EvalContext root = make_root_context();
  EvalContext scope = root.child();
  for (std::size_t i = 0; i < args.size(); ++i) {
    scope.bind(tactic.params[i].name, args[i]);
  }
  const std::size_t ops_begin = txn.op_count();
  EvalValue result;
  try {
    exec_block(*tactic.body, scope);
    result = EvalValue::nil();  // fell off the end
  } catch (const ReturnSignal& ret) {
    result = ret.value;
  }
  const bool succeeded = result.is_bool() && result.as_bool();
  if (trace) {
    trace->emplace_back(tactic.name, succeeded);
  }
  if (spans_ && trace) {
    spans_->push_back(
        TacticSpan{tactic.name, succeeded, ops_begin, txn.op_count()});
  }
  ARC_DEBUG << "tactic " << tactic.name << " -> " << result.to_string();
  return result;
}

void Interpreter::exec_block(const BlockStmt& block, EvalContext& ctx) {
  // let-bindings are visible to subsequent statements in the same block.
  EvalContext scope = ctx.child();
  for (const StmtPtr& stmt : block.statements) exec_stmt(*stmt, scope);
}

void Interpreter::exec_stmt(const Stmt& stmt, EvalContext& ctx) {
  if (const auto* block = dynamic_cast<const BlockStmt*>(&stmt)) {
    exec_block(*block, ctx);
    return;
  }
  if (const auto* let = dynamic_cast<const LetStmt*>(&stmt)) {
    ctx.bind(let->name, evaluator_.evaluate(*let->value, ctx));
    return;
  }
  if (const auto* ifs = dynamic_cast<const IfStmt*>(&stmt)) {
    if (evaluator_.evaluate_bool(*ifs->condition, ctx)) {
      exec_stmt(*ifs->then_branch, ctx);
    } else if (ifs->else_branch) {
      exec_stmt(*ifs->else_branch, ctx);
    }
    return;
  }
  if (const auto* fe = dynamic_cast<const ForeachStmt*>(&stmt)) {
    EvalValue domain = evaluator_.evaluate(*fe->domain, ctx);
    for (const EvalValue& item : domain.as_set()) {
      EvalContext scope = ctx.child();
      scope.bind(fe->binder, item);
      exec_stmt(*fe->body, scope);
    }
    return;
  }
  if (const auto* ret = dynamic_cast<const ReturnStmt*>(&stmt)) {
    ReturnSignal signal;
    signal.value = ret->value ? evaluator_.evaluate(*ret->value, ctx)
                              : EvalValue::nil();
    throw signal;
  }
  if (dynamic_cast<const CommitStmt*>(&stmt)) {
    throw CommitSignal{};
  }
  if (const auto* ab = dynamic_cast<const AbortStmt*>(&stmt)) {
    throw AbortSignal{ab->reason};
  }
  if (const auto* es = dynamic_cast<const ExprStmt*>(&stmt)) {
    evaluator_.evaluate(*es->expr, ctx);
    return;
  }
  throw ScriptError("unknown statement node");
}

EvalValue Interpreter::eval(const Expr& expr) {
  EvalContext ctx = make_root_context();
  return evaluator_.evaluate(expr, ctx);
}

}  // namespace arcadia::acme
