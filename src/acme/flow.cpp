#include "acme/flow.hpp"

#include <map>

namespace arcadia::acme {

namespace {

/// Rendering with `let` substitution: bound names expand to the rendered
/// text of their initializer so guards stay comparable across tactics that
/// factor differently.
std::string render_subst(const Expr& expr,
                         const std::map<std::string, std::string>& lets);

std::string render_subst_call(const CallExpr& call,
                              const std::map<std::string, std::string>& lets) {
  std::string out = render_subst(*call.callee, lets) + "(";
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    if (i) out += ", ";
    out += render_subst(*call.args[i], lets);
  }
  return out + ")";
}

std::string render_subst(const Expr& expr,
                         const std::map<std::string, std::string>& lets) {
  if (const auto* name = dynamic_cast<const NameExpr*>(&expr)) {
    auto it = lets.find(name->name);
    if (it != lets.end()) return it->second;
    return name->name;
  }
  if (const auto* member = dynamic_cast<const MemberExpr*>(&expr)) {
    return render_subst(*member->object, lets) + "." + member->member;
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(&expr)) {
    return render_subst_call(*call, lets);
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
    const char* op = unary->op == UnaryExpr::Op::Not ? "!" : "-";
    return std::string(op) + render_subst(*unary->operand, lets);
  }
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
    // Reuse render_expr's operator spelling by rendering both sides with
    // substitution and re-parenthesizing identically.
    std::string lhs = render_subst(*binary->lhs, lets);
    std::string rhs = render_subst(*binary->rhs, lets);
    // Extract the operator text from a minimal render of this node kind.
    using Op = BinaryExpr::Op;
    const char* op = "?";
    switch (binary->op) {
      case Op::Or: op = "or"; break;
      case Op::And: op = "and"; break;
      case Op::Eq: op = "=="; break;
      case Op::Ne: op = "!="; break;
      case Op::Lt: op = "<"; break;
      case Op::Le: op = "<="; break;
      case Op::Gt: op = ">"; break;
      case Op::Ge: op = ">="; break;
      case Op::Add: op = "+"; break;
      case Op::Sub: op = "-"; break;
      case Op::Mul: op = "*"; break;
      case Op::Div: op = "/"; break;
      case Op::Mod: op = "%"; break;
    }
    return "(" + lhs + " " + op + " " + rhs + ")";
  }
  // Literals, select, quantifiers: substitution never reaches inside a
  // binder scope in guard position; fall back to the canonical renderer.
  return render_expr(expr);
}

using Rel = GuardConjunct::Rel;

/// Negate a relational operator: the guard is ¬(early-out condition).
Rel negate(BinaryExpr::Op op) {
  using Op = BinaryExpr::Op;
  switch (op) {
    case Op::Lt: return Rel::Ge;
    case Op::Le: return Rel::Gt;
    case Op::Gt: return Rel::Le;
    case Op::Ge: return Rel::Lt;
    case Op::Eq: return Rel::Ne;
    case Op::Ne: return Rel::Eq;
    default: return Rel::Opaque;
  }
}

const char* rel_text(Rel rel) {
  switch (rel) {
    case Rel::Lt: return "<";
    case Rel::Le: return "<=";
    case Rel::Gt: return ">";
    case Rel::Ge: return ">=";
    case Rel::Eq: return "==";
    case Rel::Ne: return "!=";
    case Rel::Opaque: return "?";
  }
  return "?";
}

GuardConjunct negated_conjunct(const Expr& cond,
                               const std::map<std::string, std::string>& lets) {
  GuardConjunct c;
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&cond)) {
    const Rel rel = negate(binary->op);
    if (rel != Rel::Opaque) {
      c.rel = rel;
      c.subject = render_subst(*binary->lhs, lets);
      c.rhs_text = render_subst(*binary->rhs, lets);
      if (const auto* lit =
              dynamic_cast<const LiteralExpr*>(binary->rhs.get())) {
        if (lit->kind == LiteralExpr::Kind::Number) {
          c.numeric = true;
          c.threshold = lit->number_value;
        }
      }
      c.text = "(" + c.subject + " " + rel_text(rel) + " " + c.rhs_text + ")";
      return c;
    }
  }
  c.rel = Rel::Opaque;
  c.text = "!" + render_subst(cond, lets);
  return c;
}

/// An early-out arm: `if (cond) { return false; }` with no else.
const Expr* early_out_condition(const IfStmt& ifs) {
  if (ifs.else_branch) return nullptr;
  const Stmt* body = ifs.then_branch.get();
  if (const auto* block = dynamic_cast<const BlockStmt*>(body)) {
    if (block->statements.size() != 1) return nullptr;
    body = block->statements.front().get();
  }
  const auto* ret = dynamic_cast<const ReturnStmt*>(body);
  if (!ret || !ret->value) return nullptr;
  const auto* lit = dynamic_cast<const LiteralExpr*>(ret->value.get());
  if (!lit || lit->kind != LiteralExpr::Kind::Bool || lit->bool_value) {
    return nullptr;
  }
  return ifs.condition.get();
}

/// Statements of the tactic body past the leading let / early-out prefix.
std::vector<const Stmt*> post_guard_statements(
    const TacticDecl& tactic, std::map<std::string, std::string>* lets_out,
    TacticGuard* guard_out) {
  std::map<std::string, std::string> lets;
  std::vector<const Stmt*> rest;
  bool in_prefix = true;
  for (const StmtPtr& s : tactic.body->statements) {
    if (in_prefix) {
      if (const auto* let = dynamic_cast<const LetStmt*>(s.get())) {
        lets[let->name] = render_subst(*let->value, lets);
        continue;
      }
      if (const auto* ifs = dynamic_cast<const IfStmt*>(s.get())) {
        if (const Expr* cond = early_out_condition(*ifs)) {
          if (guard_out) {
            guard_out->conjuncts.push_back(negated_conjunct(*cond, lets));
          }
          continue;
        }
      }
      in_prefix = false;
    }
    rest.push_back(s.get());
  }
  if (lets_out) *lets_out = std::move(lets);
  return rest;
}

/// Does every path through `stmt` end in `return true;`? (`reachable
/// fallthrough` is failure.)
bool returns_literal_true(const Stmt& stmt);

/// Any return of something other than literal `true`, or any abort,
/// anywhere inside (used to keep always_succeeds conservative for
/// statements that may both exit and fall through, e.g. one-armed ifs).
bool has_non_true_exit(const Stmt& stmt) {
  if (const auto* ret = dynamic_cast<const ReturnStmt*>(&stmt)) {
    if (!ret->value) return true;
    const auto* lit = dynamic_cast<const LiteralExpr*>(ret->value.get());
    return !(lit && lit->kind == LiteralExpr::Kind::Bool && lit->bool_value);
  }
  if (dynamic_cast<const AbortStmt*>(&stmt)) return true;
  if (const auto* block = dynamic_cast<const BlockStmt*>(&stmt)) {
    for (const StmtPtr& s : block->statements) {
      if (has_non_true_exit(*s)) return true;
    }
    return false;
  }
  if (const auto* ifs = dynamic_cast<const IfStmt*>(&stmt)) {
    if (has_non_true_exit(*ifs->then_branch)) return true;
    return ifs->else_branch && has_non_true_exit(*ifs->else_branch);
  }
  if (const auto* fe = dynamic_cast<const ForeachStmt*>(&stmt)) {
    return has_non_true_exit(*fe->body);
  }
  return false;
}

bool block_returns_literal_true(const std::vector<const Stmt*>& stmts) {
  for (const Stmt* s : stmts) {
    if (returns_literal_true(*s)) return true;  // rest unreachable
    if (has_non_true_exit(*s)) return false;    // a failing path survives
  }
  return false;
}

bool returns_literal_true(const Stmt& stmt) {
  if (const auto* ret = dynamic_cast<const ReturnStmt*>(&stmt)) {
    if (!ret->value) return false;
    const auto* lit = dynamic_cast<const LiteralExpr*>(ret->value.get());
    return lit && lit->kind == LiteralExpr::Kind::Bool && lit->bool_value;
  }
  if (const auto* block = dynamic_cast<const BlockStmt*>(&stmt)) {
    std::vector<const Stmt*> stmts;
    stmts.reserve(block->statements.size());
    for (const StmtPtr& s : block->statements) stmts.push_back(s.get());
    return block_returns_literal_true(stmts);
  }
  if (const auto* ifs = dynamic_cast<const IfStmt*>(&stmt)) {
    return ifs->else_branch != nullptr &&
           returns_literal_true(*ifs->then_branch) &&
           returns_literal_true(*ifs->else_branch);
  }
  return false;
}

bool implies(const GuardConjunct& s, const GuardConjunct& w) {
  if (!s.text.empty() && s.text == w.text) return true;
  if (s.subject.empty() || s.subject != w.subject) return false;
  if (!s.numeric || !w.numeric) {
    // Symbolic thresholds: same subject, same relation, same rhs text.
    return s.rel == w.rel && s.rhs_text == w.rhs_text;
  }
  switch (s.rel) {
    case Rel::Eq:
      switch (w.rel) {
        case Rel::Lt: return s.threshold < w.threshold;
        case Rel::Le: return s.threshold <= w.threshold;
        case Rel::Gt: return s.threshold > w.threshold;
        case Rel::Ge: return s.threshold >= w.threshold;
        case Rel::Eq: return s.threshold == w.threshold;
        case Rel::Ne: return s.threshold != w.threshold;
        case Rel::Opaque: return false;
      }
      return false;
    case Rel::Lt:
      if (w.rel == Rel::Lt || w.rel == Rel::Le)
        return s.threshold <= w.threshold;
      return false;
    case Rel::Le:
      if (w.rel == Rel::Lt) return s.threshold < w.threshold;
      if (w.rel == Rel::Le) return s.threshold <= w.threshold;
      return false;
    case Rel::Gt:
      if (w.rel == Rel::Gt || w.rel == Rel::Ge)
        return s.threshold >= w.threshold;
      return false;
    case Rel::Ge:
      if (w.rel == Rel::Gt) return s.threshold > w.threshold;
      if (w.rel == Rel::Ge) return s.threshold >= w.threshold;
      return false;
    default:
      return false;
  }
}

}  // namespace

TacticGuard extract_guard(const TacticDecl& tactic) {
  TacticGuard guard;
  post_guard_statements(tactic, nullptr, &guard);
  return guard;
}

bool always_succeeds(const TacticDecl& tactic) {
  TacticGuard guard;
  const std::vector<const Stmt*> rest =
      post_guard_statements(tactic, nullptr, &guard);
  if (rest.empty()) return false;  // falls off the end -> nil, not success
  return block_returns_literal_true(rest);
}

bool guard_implies(const TacticGuard& stronger, const TacticGuard& weaker) {
  for (const GuardConjunct& w : weaker.conjuncts) {
    bool matched = false;
    for (const GuardConjunct& s : stronger.conjuncts) {
      if (implies(s, w)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::vector<FirstSuccessArm> first_success_arms(const StrategyDecl& strategy) {
  std::vector<FirstSuccessArm> arms;
  // The chain is the sole top-level IfStmt of the body.
  const IfStmt* chain = nullptr;
  for (const StmtPtr& s : strategy.body->statements) {
    if (const auto* ifs = dynamic_cast<const IfStmt*>(s.get())) {
      if (chain) return {};  // two chains: not the FirstSuccess shape
      chain = ifs;
    }
  }
  while (chain) {
    FirstSuccessArm arm;
    arm.line = chain->condition->line;
    arm.column = chain->condition->column;
    if (const auto* call =
            dynamic_cast<const CallExpr*>(chain->condition.get())) {
      if (const auto* callee =
              dynamic_cast<const NameExpr*>(call->callee.get())) {
        arm.tactic = callee->name;
      }
    }
    arms.push_back(arm);
    const Stmt* next = chain->else_branch.get();
    if (!next) break;
    if (const auto* block = dynamic_cast<const BlockStmt*>(next)) {
      if (block->statements.size() == 1) next = block->statements.front().get();
    }
    chain = dynamic_cast<const IfStmt*>(next);
  }
  return arms;
}

namespace {

bool concludes(const Stmt& stmt) {
  if (dynamic_cast<const CommitStmt*>(&stmt)) return true;
  if (dynamic_cast<const AbortStmt*>(&stmt)) return true;
  if (const auto* block = dynamic_cast<const BlockStmt*>(&stmt)) {
    for (const StmtPtr& s : block->statements) {
      if (concludes(*s)) return true;  // later statements unreachable
    }
    return false;
  }
  if (const auto* ifs = dynamic_cast<const IfStmt*>(&stmt)) {
    return ifs->else_branch != nullptr && concludes(*ifs->then_branch) &&
           concludes(*ifs->else_branch);
  }
  return false;
}

}  // namespace

bool strategy_always_concludes(const StrategyDecl& strategy) {
  return concludes(*strategy.body);
}

}  // namespace arcadia::acme
