// Lexer shared by the three surface languages: the Acme ADL, Armani-style
// constraint expressions, and the Figure 5 repair-script language.
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace arcadia::acme {

enum class TokenKind {
  Identifier,
  Number,
  String,
  // punctuation / operators
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Semicolon, Colon, Comma, Dot,
  Assign,      // =
  Eq, Ne, Lt, Le, Gt, Ge,
  Plus, Minus, Star, Slash, Percent,
  Not,         // !
  AndAnd, OrOr,
  Arrow,       // ->
  BangArrow,   // !-> (the paper's "! →" invariant-to-repair link)
  Pipe,        // |
  EndOfFile,
};

const char* to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;   ///< identifier name / string contents / number text
  double number = 0.0;
  int line = 1;
  int column = 1;

  bool is(TokenKind k) const { return kind == k; }
  /// Case-sensitive keyword check against an identifier token.
  bool is_keyword(const char* kw) const {
    return kind == TokenKind::Identifier && text == kw;
  }
};

/// Tokenize the whole input. Comments: // to end of line and /* ... */.
/// Throws ParseError on malformed input (unterminated string/comment,
/// stray characters).
std::vector<Token> tokenize(const std::string& source);

}  // namespace arcadia::acme
