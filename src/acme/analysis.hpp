// arcverify's semantic analysis: effect/flow checks over a parsed repair
// script, and cross-artifact verification of an assembled deployment.
//
// Script rules (analyze_script):
//   ineffective-tactic    (error)   a tactic reachable from an invariant's
//                                   strategy influences none of the
//                                   invariant's support properties in a
//                                   helpful direction — the Figure 5 bug
//                                   class: the repair runs, commits, and
//                                   cannot possibly discharge the violation.
//   dead-tactic           (error)   a FirstSuccess sibling whose guard is
//                                   implied by an earlier sibling that
//                                   always succeeds — it can never run.
//   no-verdict            (error)   a strategy path that ends without
//                                   commit or abort.
//   conflicting-strategies (warning) two strategies with overlapping
//                                   invariant support push the same
//                                   property in opposite directions.
//   unknown-operator-effect (warning) an operator call with no entry in
//                                   the effect table (its writes are
//                                   invisible to every other rule).
//
// Deployment rules (verify_deployment):
//   ungauged-constraint   (error)   an installed constraint none of whose
//                                   read properties is fed by any gauge on
//                                   its element — it can never trip.
//   uncosted-operator     (error)   a style operator reachable from the
//                                   installed script with no declared
//                                   environment cost — plan estimates
//                                   silently default.
//   scenario-config       (error)   a scenario/fault config referencing
//                                   unknown scenarios or carrying
//                                   out-of-range parameters (checked by
//                                   core::verify_scenario_config).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "acme/ast.hpp"
#include "acme/checker.hpp"
#include "acme/effects.hpp"
#include "model/transaction.hpp"

namespace arcadia::acme::analysis {

struct AnalysisIssue {
  std::string rule;
  Severity severity = Severity::Error;
  int line = 0;
  int column = 0;
  std::string message;

  std::string to_string() const {
    return "line " + std::to_string(line) + ":" + std::to_string(column) +
           ": " + std::string(acme::to_string(severity)) + ": " + message +
           " [" + rule + "]";
  }
};

/// All analysis rule ids, sorted (script + deployment).
std::vector<std::string> rule_ids();

/// Run every script rule. Severity-error issues indicate a repair that
/// cannot work; warnings indicate blind spots.
std::vector<AnalysisIssue> analyze_script(const Script& script,
                                          const EffectTable& table);

// ---------------------------------------------------------------------------
// Cross-artifact verification. The view is deliberately plain data so the
// acme layer stays independent of core/monitor/runtime: core/verify.cpp
// assembles it from a started Framework.

struct ConstraintView {
  std::string id;
  std::string element;
  std::set<std::string> reads;  ///< support properties of the condition
  int line = 0;
  int column = 0;
};

/// One gauge mapping: `property` of `element` is produced by some gauge.
struct GaugeFeed {
  std::string element;
  std::string property;
};

struct DeploymentView {
  std::vector<ConstraintView> constraints;
  std::vector<GaugeFeed> gauge_feeds;
  /// Declared per-operator runtime cost (seconds); absent or <= 0 means
  /// the plan cost model silently defaults.
  std::map<std::string, double> operator_costs_s;
  /// Operator call sites reachable from installed scripts.
  std::vector<OperatorUse> operators_used;
};

std::vector<AnalysisIssue> verify_deployment(const DeploymentView& view);

// ---------------------------------------------------------------------------
// Soundness oracle (test support): journaled ops vs inferred write sets.

/// True when `record` falls inside the statically inferred effect of
/// `effects`: SetProperty within the write set, AddComponent/
/// RemoveComponent/Attach/Detach covered by the structural flags.
bool op_within_effects(const model::OpRecord& record,
                       const TacticEffects& effects);

}  // namespace arcadia::acme::analysis
