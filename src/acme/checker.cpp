#include "acme/checker.hpp"

namespace arcadia::acme {

namespace {

std::string property_type_name(model::PropertyType type) {
  switch (type) {
    case model::PropertyType::Bool: return "boolean";
    case model::PropertyType::Int:
    case model::PropertyType::Double: return "number";
    case model::PropertyType::String: return "string";
    case model::PropertyType::Any: return "";
  }
  return "";
}

void issue(std::vector<CheckIssue>& out, int line, int column,
           std::string message) {
  out.push_back(
      CheckIssue{line, column, Severity::Error, std::move(message)});
}

}  // namespace

ScriptChecker::ScriptChecker(const model::Style& style) : style_(style) {
  // Expression-language builtins.
  declare_function("size", 1, 1, "number");
  declare_function("empty", 1, 1, "boolean");
  declare_function("contains", 2, 2, "boolean");
  declare_function("connected", 2, 2, "boolean");
  declare_function("attached", 2, 2, "boolean");
  declare_function("abs", 1, 1, "number");
  declare_function("min", 2, 2, "number");
  declare_function("max", 2, 2, "number");
  declare_function("hasProperty", 2, 2, "boolean");
}

void ScriptChecker::declare_global(const std::string& name, std::string type) {
  globals_[name] = std::move(type);
}

void ScriptChecker::declare_function(const std::string& name,
                                     std::size_t min_args,
                                     std::size_t max_args,
                                     std::string result_type) {
  functions_[name] = FunctionSig{min_args, max_args, std::move(result_type)};
}

void ScriptChecker::declare_operator(const std::string& name,
                                     std::string target_type, std::size_t args,
                                     std::string result_type) {
  operators_[name] =
      OperatorSig{std::move(target_type), args, std::move(result_type)};
}

const std::string* ScriptChecker::lookup(const std::vector<Scope>& scopes,
                                         const std::string& name) const {
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    auto found = it->names.find(name);
    if (found != it->names.end()) return &found->second;
  }
  return nullptr;
}

std::string ScriptChecker::member_type(const std::string& object_type,
                                       const std::string& member, int line,
                                       int column,
                                       std::vector<CheckIssue>& out) const {
  if (object_type.empty() || object_type == "nil") return "";
  if (object_type == "System") {
    if (member == "Components") return "set{}";
    if (member == "Connectors") return "set{}";
    if (member == "name") return "string";
    issue(out, line, column, "system has no member '" + member + "'");
    return "";
  }
  if (member == "name" || member == "type") return "string";

  const model::ElementTypeDef* def = style_.find(object_type);
  if (!def) return "";  // not a style type we know; stay quiet
  if (def->kind == model::ElementKind::Component) {
    if (member == "Ports") return "set{}";
    if (member == "Representation") return "System";
  }
  if (def->kind == model::ElementKind::Connector && member == "Roles") {
    return "set{}";
  }
  if (const model::PropertySpec* prop = def->find_prop(member)) {
    return property_type_name(prop->type);
  }
  issue(out, line, column, "type '" + object_type +
                               "' declares no property '" + member +
                               "' (style " + style_.name() + ")");
  return "";
}

std::string ScriptChecker::infer(const Expr& expr, std::vector<Scope>& scopes,
                                 const std::string& context_type,
                                 std::vector<CheckIssue>& out) {
  if (const auto* lit = dynamic_cast<const LiteralExpr*>(&expr)) {
    switch (lit->kind) {
      case LiteralExpr::Kind::Bool: return "boolean";
      case LiteralExpr::Kind::Number: return "number";
      case LiteralExpr::Kind::String: return "string";
      case LiteralExpr::Kind::Nil: return "nil";
    }
  }
  if (const auto* name = dynamic_cast<const NameExpr*>(&expr)) {
    if (name->name == "self") return "System";
    if (const std::string* type = lookup(scopes, name->name)) return *type;
    auto global = globals_.find(name->name);
    if (global != globals_.end()) return global->second;
    // Unqualified property reference against the context element.
    if (!context_type.empty()) {
      if (const model::ElementTypeDef* def = style_.find(context_type)) {
        if (const model::PropertySpec* prop = def->find_prop(name->name)) {
          return property_type_name(prop->type);
        }
      }
    }
    if (!lenient_names_) {
      issue(out, name->line, name->column,
            "unbound name '" + name->name +
                "' (not a parameter, let, global, or context property)");
    }
    return "";
  }
  if (const auto* member = dynamic_cast<const MemberExpr*>(&expr)) {
    std::string object = infer(*member->object, scopes, context_type, out);
    return member_type(object, member->member, member->line, member->column,
                       out);
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(&expr)) {
    // Method-style: element.op(args).
    if (const auto* target = dynamic_cast<const MemberExpr*>(call->callee.get())) {
      std::string object = infer(*target->object, scopes, context_type, out);
      for (const ExprPtr& a : call->args) infer(*a, scopes, context_type, out);
      auto op = operators_.find(target->member);
      if (op == operators_.end()) {
        issue(out, call->line, call->column,
              "unknown style operator '" + target->member + "'");
        return "";
      }
      if (!op->second.target_type.empty() && !object.empty() &&
          object != op->second.target_type) {
        issue(out, call->line, call->column, "operator '" + target->member +
                                   "' applies to " + op->second.target_type +
                                   ", not " + object);
      }
      if (call->args.size() != op->second.args) {
        issue(out, call->line, call->column,
              "operator '" + target->member + "' takes " +
                  std::to_string(op->second.args) + " argument(s), got " +
                  std::to_string(call->args.size()));
      }
      return op->second.result_type;
    }
    const auto* callee = dynamic_cast<const NameExpr*>(call->callee.get());
    if (!callee) {
      issue(out, call->line, call->column, "call of a non-function expression");
      return "";
    }
    for (const ExprPtr& a : call->args) infer(*a, scopes, context_type, out);
    // Tactic call?
    if (script_) {
      if (const TacticDecl* tactic = script_->find_tactic(callee->name)) {
        if (call->args.size() != tactic->params.size()) {
          issue(out, call->line, call->column,
                "tactic '" + callee->name + "' takes " +
                    std::to_string(tactic->params.size()) +
                    " argument(s), got " + std::to_string(call->args.size()));
        }
        return tactic->return_type.empty() ? "" : tactic->return_type;
      }
    }
    auto fn = functions_.find(callee->name);
    if (fn == functions_.end()) {
      issue(out, call->line, call->column, "unknown function '" + callee->name + "'");
      return "";
    }
    if (call->args.size() < fn->second.min_args ||
        call->args.size() > fn->second.max_args) {
      issue(out, call->line, call->column,
            "function '" + callee->name + "' takes " +
                std::to_string(fn->second.min_args) +
                (fn->second.max_args != fn->second.min_args
                     ? ".." + std::to_string(fn->second.max_args)
                     : "") +
                " argument(s), got " + std::to_string(call->args.size()));
    }
    return fn->second.result_type;
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
    std::string operand = infer(*unary->operand, scopes, context_type, out);
    if (unary->op == UnaryExpr::Op::Not) {
      if (!operand.empty() && operand != "boolean") {
        issue(out, unary->line, unary->column, "'!' applied to " + operand);
      }
      return "boolean";
    }
    if (!operand.empty() && operand != "number") {
      issue(out, unary->line, unary->column, "unary '-' applied to " + operand);
    }
    return "number";
  }
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
    using Op = BinaryExpr::Op;
    std::string lhs = infer(*binary->lhs, scopes, context_type, out);
    std::string rhs = infer(*binary->rhs, scopes, context_type, out);
    switch (binary->op) {
      case Op::And:
      case Op::Or:
        for (const auto& [side, type] :
             {std::make_pair("left", lhs), std::make_pair("right", rhs)}) {
          if (!type.empty() && type != "boolean") {
            issue(out, binary->line, binary->column,
                  std::string("logical operator's ") + side + " side is " +
                      type + ", not boolean");
          }
        }
        return "boolean";
      case Op::Eq:
      case Op::Ne:
        return "boolean";
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
        for (const std::string& type : {lhs, rhs}) {
          if (!type.empty() && type != "number" && type != "string") {
            issue(out, binary->line, binary->column, "ordering comparison on " + type);
          }
        }
        return "boolean";
      case Op::Add:
        if (lhs == "string" && rhs == "string") return "string";
        [[fallthrough]];
      default:
        for (const std::string& type : {lhs, rhs}) {
          if (!type.empty() && type != "number") {
            issue(out, binary->line, binary->column, "arithmetic on " + type);
          }
        }
        return "number";
    }
  }
  if (const auto* sel = dynamic_cast<const SelectExpr*>(&expr)) {
    std::string domain = infer(*sel->domain, scopes, context_type, out);
    if (!domain.empty() && !is_set(domain) && domain != "System") {
      issue(out, sel->line, sel->column, "select domain is " + domain + ", not a set");
    }
    if (!sel->type_name.empty() && !style_.find(sel->type_name)) {
      issue(out, sel->line, sel->column,
            "unknown style type '" + sel->type_name + "' in select binder");
    }
    scopes.push_back({});
    scopes.back().names[sel->binder] = sel->type_name;
    std::string pred = infer(*sel->predicate, scopes, context_type, out);
    if (!pred.empty() && pred != "boolean") {
      issue(out, sel->line, sel->column, "select predicate is " + pred + ", not boolean");
    }
    scopes.pop_back();
    if (sel->one) return sel->type_name;
    return sel->type_name.empty() ? "set{}" : "set{" + sel->type_name + "}";
  }
  if (const auto* quant = dynamic_cast<const QuantExpr*>(&expr)) {
    std::string domain = infer(*quant->domain, scopes, context_type, out);
    if (!domain.empty() && !is_set(domain)) {
      issue(out, quant->line, quant->column, "quantifier domain is " + domain + ", not a set");
    }
    if (!quant->type_name.empty() && !style_.find(quant->type_name)) {
      issue(out, quant->line, quant->column,
            "unknown style type '" + quant->type_name + "' in quantifier");
    }
    scopes.push_back({});
    scopes.back().names[quant->binder] = quant->type_name;
    std::string pred = infer(*quant->predicate, scopes, context_type, out);
    if (!pred.empty() && pred != "boolean") {
      issue(out, quant->line, quant->column,
            "quantifier predicate is " + pred + ", not boolean");
    }
    scopes.pop_back();
    return "boolean";
  }
  return "";
}

void ScriptChecker::check_stmt(const Stmt& stmt, std::vector<Scope>& scopes,
                               const std::string& context_type,
                               bool in_strategy,
                               std::vector<CheckIssue>& out) {
  if (const auto* block = dynamic_cast<const BlockStmt*>(&stmt)) {
    scopes.push_back({});
    for (const StmtPtr& s : block->statements) {
      check_stmt(*s, scopes, context_type, in_strategy, out);
    }
    scopes.pop_back();
    return;
  }
  if (const auto* let = dynamic_cast<const LetStmt*>(&stmt)) {
    std::string inferred = infer(*let->value, scopes, context_type, out);
    std::string declared = let->type_annotation;
    if (!declared.empty() && !is_set(declared) && declared != "boolean" &&
        declared != "number" && declared != "string" &&
        !style_.find(declared)) {
      issue(out, let->line, let->column,
            "unknown type '" + declared + "' in let annotation");
    }
    // The declared type wins when present (nil-able bindings are common).
    scopes.back().names[let->name] = declared.empty() ? inferred : declared;
    return;
  }
  if (const auto* ifs = dynamic_cast<const IfStmt*>(&stmt)) {
    std::string cond = infer(*ifs->condition, scopes, context_type, out);
    if (!cond.empty() && cond != "boolean") {
      issue(out, ifs->line, ifs->column, "if condition is " + cond + ", not boolean");
    }
    check_stmt(*ifs->then_branch, scopes, context_type, in_strategy, out);
    if (ifs->else_branch) {
      check_stmt(*ifs->else_branch, scopes, context_type, in_strategy, out);
    }
    return;
  }
  if (const auto* fe = dynamic_cast<const ForeachStmt*>(&stmt)) {
    std::string domain = infer(*fe->domain, scopes, context_type, out);
    if (!domain.empty() && !is_set(domain)) {
      issue(out, fe->line, fe->column, "foreach domain is " + domain + ", not a set");
    }
    scopes.push_back({});
    scopes.back().names[fe->binder] = set_element(domain);
    check_stmt(*fe->body, scopes, context_type, in_strategy, out);
    scopes.pop_back();
    return;
  }
  if (const auto* ret = dynamic_cast<const ReturnStmt*>(&stmt)) {
    if (ret->value) infer(*ret->value, scopes, context_type, out);
    if (in_strategy) {
      issue(out, ret->line, ret->column,
            "'return' inside a strategy (strategies end with commit/abort)");
    }
    return;
  }
  if (dynamic_cast<const CommitStmt*>(&stmt)) {
    if (!in_strategy) {
      issue(out, stmt.line, stmt.column, "'commit repair' is only valid inside a strategy");
    }
    return;
  }
  if (dynamic_cast<const AbortStmt*>(&stmt)) {
    return;  // valid anywhere
  }
  if (const auto* es = dynamic_cast<const ExprStmt*>(&stmt)) {
    infer(*es->expr, scopes, context_type, out);
    return;
  }
}

std::vector<CheckIssue> ScriptChecker::check_script(const Script& script) {
  std::vector<CheckIssue> out;
  script_ = &script;

  for (const InvariantDecl& inv : script.invariants) {
    std::vector<Scope> scopes(1);
    if (!inv.name.empty()) scopes.back().names[inv.name] = "";
    lenient_names_ = true;
    std::string type = infer(*inv.condition, scopes, /*context_type=*/"", out);
    lenient_names_ = false;
    // Invariant conditions mention context properties we cannot resolve
    // statically (the element is chosen at instantiation); only flag a
    // resolved non-boolean type.
    if (!type.empty() && type != "boolean") {
      issue(out, inv.line, inv.column, "invariant condition is " + type + ", not boolean");
    }
    if (!inv.handler.empty() && !script.find_strategy(inv.handler)) {
      issue(out, inv.line, inv.column,
            "invariant handler '" + inv.handler + "' is not a strategy");
    }
    if (const StrategyDecl* handler = script.find_strategy(inv.handler)) {
      if (handler->params.size() != inv.args.size()) {
        issue(out, inv.line, inv.column,
              "handler '" + inv.handler + "' takes " +
                  std::to_string(handler->params.size()) +
                  " argument(s), invariant passes " +
                  std::to_string(inv.args.size()));
      }
    }
  }

  auto check_body = [&](const std::vector<Param>& params,
                        const BlockStmt& body, bool in_strategy) {
    std::vector<Scope> scopes(1);
    std::string context_type;
    for (const Param& p : params) {
      scopes.back().names[p.name] = p.type_annotation;
      if (!p.type_annotation.empty() && !is_set(p.type_annotation) &&
          !style_.find(p.type_annotation)) {
        issue(out, body.line, body.column,
              "unknown style type '" + p.type_annotation + "' in parameter '" +
                  p.name + "'");
      }
      if (context_type.empty()) context_type = p.type_annotation;
    }
    // Unqualified names inside a body may refer to properties of the first
    // (element-typed) parameter — matching interpreter behaviour where the
    // violating element is contextual.
    for (const StmtPtr& s : body.statements) {
      check_stmt(*s, scopes, context_type, in_strategy, out);
    }
  };

  for (const StrategyDecl& strategy : script.strategies) {
    check_body(strategy.params, *strategy.body, /*in_strategy=*/true);
  }
  for (const TacticDecl& tactic : script.tactics) {
    check_body(tactic.params, *tactic.body, /*in_strategy=*/false);
  }
  script_ = nullptr;
  return out;
}

std::vector<CheckIssue> ScriptChecker::check_expression(
    const Expr& expr, const std::string& context_type) {
  std::vector<CheckIssue> out;
  std::vector<Scope> scopes(1);
  infer(expr, scopes, context_type, out);
  return out;
}

ScriptChecker make_client_server_checker(const model::Style& style) {
  ScriptChecker checker(style);
  checker.declare_global("maxServerLoad");
  checker.declare_global("minBandwidth");
  checker.declare_global("minUtilization");
  checker.declare_global("minReplicas");
  checker.declare_operator("addServer", model::cs::kServerGroupT, 0);
  checker.declare_operator("removeServer", model::cs::kServerGroupT, 0);
  checker.declare_operator("move", model::cs::kClientT, 1);
  checker.declare_function("roleOf", 1, 1, model::cs::kClientRoleT);
  checker.declare_function("groupOf", 1, 1, model::cs::kServerGroupT);
  checker.declare_function("findGoodSGrp", 2, 2, model::cs::kServerGroupT);
  checker.declare_function("findLessLoadedSGrp", 2, 2,
                           model::cs::kServerGroupT);
  return checker;
}

}  // namespace arcadia::acme
