// Executes repair scripts against an architectural model. Strategies run
// inside a model Transaction supplied by the caller (the repair engine):
// style operators invoked as element methods (sGrp.addServer()) mutate the
// model through that transaction; `commit repair` ends the strategy
// successfully; `abort Reason` ends it unsuccessfully (the engine then
// rolls the transaction back).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "acme/ast.hpp"
#include "acme/evaluator.hpp"
#include "model/transaction.hpp"
#include "util/symbol.hpp"

namespace arcadia::acme {

/// A style operator callable method-style from scripts. Receives the target
/// element, evaluated arguments, and the live transaction.
using OperatorFn = std::function<EvalValue(
    const ElementRef& target, std::vector<EvalValue>& args,
    model::Transaction& txn)>;

/// The half-open journal window [ops_begin, ops_end) a tactic's execution
/// covered in the strategy's transaction. The static-analysis soundness
/// oracle checks every OpRecord in the window against the tactic's
/// inferred write set (acme/analysis.hpp).
struct TacticSpan {
  std::string name;
  bool succeeded = false;
  std::size_t ops_begin = 0;
  std::size_t ops_end = 0;
};

/// Result of running a strategy.
struct StrategyOutcome {
  bool committed = false;
  bool aborted = false;
  std::string abort_reason;
  /// Tactics that executed (in order) and whether each returned true.
  std::vector<std::pair<std::string, bool>> tactics_run;
  /// Journal spans for the same executions (parallel to tactics_run;
  /// nested tactic calls appear in completion order, innermost first).
  std::vector<TacticSpan> spans;
};

class Interpreter {
 public:
  Interpreter(const model::System& system, const Script& script);

  /// Style operators (addServer, move, removeServer, ...).
  void register_operator(const std::string& name, OperatorFn fn);
  /// Free functions callable from expressions (findGoodSGrp, roleOf, ...).
  void register_function(const std::string& name, ExprFn fn);
  /// Global bindings visible to every evaluation (the task-layer thresholds:
  /// maxServerLoad, minBandwidth, minUtilization, ...).
  void bind_global(const std::string& name, EvalValue value);

  const Script& script() const { return script_; }

  /// Run a named strategy. The transaction must target the same system the
  /// interpreter reads; on abort the caller is responsible for rollback.
  StrategyOutcome run_strategy(const std::string& name,
                               std::vector<EvalValue> args,
                               model::Transaction& txn);

  /// Evaluate a named tactic directly (precondition probing in tests).
  bool run_tactic(const std::string& name, std::vector<EvalValue> args,
                  model::Transaction& txn);

  /// Evaluate a bare expression in the script's global scope.
  EvalValue eval(const Expr& expr);

 private:
  struct CommitSignal {};
  struct AbortSignal {
    std::string reason;
  };
  struct ReturnSignal {
    EvalValue value;
  };

  EvalValue call_tactic(const TacticDecl& tactic, std::vector<EvalValue>& args,
                        model::Transaction& txn,
                        std::vector<std::pair<std::string, bool>>* trace);
  void exec_block(const BlockStmt& block, EvalContext& ctx);
  void exec_stmt(const Stmt& stmt, EvalContext& ctx);
  EvalContext make_root_context();

  const model::System& system_;
  const Script& script_;
  Evaluator evaluator_;
  util::SymbolMap<OperatorFn> operators_;
  util::SymbolMap<ExprFn> functions_;
  util::SymbolMap<EvalValue> globals_;

  // Per-run state (valid while run_strategy is on the stack).
  model::Transaction* txn_ = nullptr;
  std::vector<std::pair<std::string, bool>>* trace_ = nullptr;
  std::vector<TacticSpan>* spans_ = nullptr;
  MethodFn method_bridge_;
};

}  // namespace arcadia::acme
