#include "acme/expr_parser.hpp"

namespace arcadia::acme {

const Token& TokenStream::expect(TokenKind kind, const std::string& context) {
  if (!at(kind)) {
    fail("expected " + std::string(to_string(kind)) + " " + context +
         ", found " + std::string(to_string(peek().kind)) +
         (peek().text.empty() ? "" : " '" + peek().text + "'"));
  }
  return take();
}

std::string TokenStream::expect_identifier(const std::string& context) {
  return expect(TokenKind::Identifier, context).text;
}

void TokenStream::expect_keyword(const char* kw, const std::string& context) {
  if (!at_keyword(kw)) {
    fail("expected '" + std::string(kw) + "' " + context);
  }
  take();
}

void TokenStream::fail(const std::string& message) const {
  throw ParseError(message, peek().line, peek().column);
}

namespace {

template <typename T>
std::unique_ptr<T> node(const Token& at) {
  auto n = std::make_unique<T>();
  n->line = at.line;
  n->column = at.column;
  return n;
}

ExprPtr parse_or(TokenStream& ts);

/// select/exists/forall header: binder [: Type] in domain | predicate
void parse_comprehension_tail(TokenStream& ts, std::string& binder,
                              std::string& type_name, ExprPtr& domain,
                              ExprPtr& predicate) {
  binder = ts.expect_identifier("after quantifier/select");
  if (ts.accept(TokenKind::Colon)) {
    type_name = ts.expect_identifier("as binder type");
    // Tolerate `set{T}` annotations in binder positions.
    if (type_name == "set" && ts.accept(TokenKind::LBrace)) {
      type_name = ts.expect_identifier("inside set{...}");
      ts.expect(TokenKind::RBrace, "closing set{...}");
    }
  }
  ts.expect_keyword("in", "before comprehension domain");
  domain = parse_or(ts);
  ts.expect(TokenKind::Pipe, "before comprehension predicate");
  predicate = parse_or(ts);
}

ExprPtr parse_primary(TokenStream& ts) {
  const Token& t = ts.peek();
  switch (t.kind) {
    case TokenKind::Number: {
      auto lit = node<LiteralExpr>(t);
      lit->kind = LiteralExpr::Kind::Number;
      lit->number_value = t.number;
      ts.take();
      return lit;
    }
    case TokenKind::String: {
      auto lit = node<LiteralExpr>(t);
      lit->kind = LiteralExpr::Kind::String;
      lit->string_value = t.text;
      ts.take();
      return lit;
    }
    case TokenKind::LParen: {
      ts.take();
      ExprPtr inner = parse_or(ts);
      ts.expect(TokenKind::RParen, "to close parenthesized expression");
      return inner;
    }
    case TokenKind::Identifier: {
      if (t.text == "true" || t.text == "false") {
        auto lit = node<LiteralExpr>(t);
        lit->kind = LiteralExpr::Kind::Bool;
        lit->bool_value = (t.text == "true");
        ts.take();
        return lit;
      }
      if (t.text == "nil" || t.text == "null") {
        auto lit = node<LiteralExpr>(t);
        lit->kind = LiteralExpr::Kind::Nil;
        ts.take();
        return lit;
      }
      if (t.text == "select") {
        auto sel = node<SelectExpr>(t);
        ts.take();
        sel->one = ts.accept_keyword("one");
        parse_comprehension_tail(ts, sel->binder, sel->type_name, sel->domain,
                                 sel->predicate);
        sel->binder_sym = util::Symbol::intern(sel->binder);
        return sel;
      }
      if (t.text == "exists" || t.text == "forall") {
        auto q = node<QuantExpr>(t);
        q->exists = (t.text == "exists");
        ts.take();
        parse_comprehension_tail(ts, q->binder, q->type_name, q->domain,
                                 q->predicate);
        q->binder_sym = util::Symbol::intern(q->binder);
        return q;
      }
      auto name = node<NameExpr>(t);
      name->name = t.text;
      name->sym = util::Symbol::intern(name->name);
      ts.take();
      return name;
    }
    default:
      ts.fail("expected an expression");
  }
}

ExprPtr parse_postfix(TokenStream& ts) {
  ExprPtr expr = parse_primary(ts);
  for (;;) {
    if (ts.at(TokenKind::Dot)) {
      const Token& dot = ts.take();
      auto member = node<MemberExpr>(dot);
      member->member = ts.expect_identifier("after '.'");
      member->sym = util::Symbol::intern(member->member);
      member->object = std::move(expr);
      expr = std::move(member);
      continue;
    }
    if (ts.at(TokenKind::LParen)) {
      const Token& paren = ts.take();
      auto call = node<CallExpr>(paren);
      call->callee = std::move(expr);
      if (!ts.at(TokenKind::RParen)) {
        for (;;) {
          call->args.push_back(parse_or(ts));
          if (!ts.accept(TokenKind::Comma)) break;
        }
      }
      ts.expect(TokenKind::RParen, "to close call arguments");
      expr = std::move(call);
      continue;
    }
    break;
  }
  return expr;
}

ExprPtr parse_unary(TokenStream& ts) {
  const Token& t = ts.peek();
  if (ts.accept(TokenKind::Not) || ts.accept_keyword("not")) {
    auto u = node<UnaryExpr>(t);
    u->op = UnaryExpr::Op::Not;
    u->operand = parse_unary(ts);
    return u;
  }
  if (ts.accept(TokenKind::Minus)) {
    auto u = node<UnaryExpr>(t);
    u->op = UnaryExpr::Op::Neg;
    u->operand = parse_unary(ts);
    return u;
  }
  return parse_postfix(ts);
}

ExprPtr binary(const Token& at, BinaryExpr::Op op, ExprPtr lhs, ExprPtr rhs) {
  auto b = node<BinaryExpr>(at);
  b->op = op;
  b->lhs = std::move(lhs);
  b->rhs = std::move(rhs);
  return b;
}

ExprPtr parse_mul(TokenStream& ts) {
  ExprPtr expr = parse_unary(ts);
  for (;;) {
    const Token& t = ts.peek();
    if (ts.accept(TokenKind::Star)) {
      expr = binary(t, BinaryExpr::Op::Mul, std::move(expr), parse_unary(ts));
    } else if (ts.accept(TokenKind::Slash)) {
      expr = binary(t, BinaryExpr::Op::Div, std::move(expr), parse_unary(ts));
    } else if (ts.accept(TokenKind::Percent)) {
      expr = binary(t, BinaryExpr::Op::Mod, std::move(expr), parse_unary(ts));
    } else {
      return expr;
    }
  }
}

ExprPtr parse_add(TokenStream& ts) {
  ExprPtr expr = parse_mul(ts);
  for (;;) {
    const Token& t = ts.peek();
    if (ts.accept(TokenKind::Plus)) {
      expr = binary(t, BinaryExpr::Op::Add, std::move(expr), parse_mul(ts));
    } else if (ts.accept(TokenKind::Minus)) {
      expr = binary(t, BinaryExpr::Op::Sub, std::move(expr), parse_mul(ts));
    } else {
      return expr;
    }
  }
}

ExprPtr parse_cmp(TokenStream& ts) {
  ExprPtr expr = parse_add(ts);
  const Token& t = ts.peek();
  BinaryExpr::Op op;
  switch (t.kind) {
    case TokenKind::Eq: op = BinaryExpr::Op::Eq; break;
    case TokenKind::Ne: op = BinaryExpr::Op::Ne; break;
    case TokenKind::Lt: op = BinaryExpr::Op::Lt; break;
    case TokenKind::Le: op = BinaryExpr::Op::Le; break;
    case TokenKind::Gt: op = BinaryExpr::Op::Gt; break;
    case TokenKind::Ge: op = BinaryExpr::Op::Ge; break;
    default: return expr;
  }
  ts.take();
  return binary(t, op, std::move(expr), parse_add(ts));
}

ExprPtr parse_and(TokenStream& ts) {
  ExprPtr expr = parse_cmp(ts);
  for (;;) {
    const Token& t = ts.peek();
    if (ts.accept(TokenKind::AndAnd) || ts.accept_keyword("and")) {
      expr = binary(t, BinaryExpr::Op::And, std::move(expr), parse_cmp(ts));
    } else {
      return expr;
    }
  }
}

ExprPtr parse_or(TokenStream& ts) {
  ExprPtr expr = parse_and(ts);
  for (;;) {
    const Token& t = ts.peek();
    if (ts.accept(TokenKind::OrOr) || ts.accept_keyword("or")) {
      expr = binary(t, BinaryExpr::Op::Or, std::move(expr), parse_and(ts));
    } else {
      return expr;
    }
  }
}

}  // namespace

ExprPtr parse_expression(TokenStream& ts) { return parse_or(ts); }

ExprPtr parse_expression(const std::string& source) {
  TokenStream ts(tokenize(source));
  ExprPtr expr = parse_expression(ts);
  if (!ts.done()) {
    ts.fail("unexpected trailing input after expression");
  }
  return expr;
}

}  // namespace arcadia::acme
