// Tree-walking evaluator for Armani-style expressions over an architectural
// model. Used for: style invariants (constraint checking), tactic
// preconditions, and the expression half of repair scripts.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "acme/ast.hpp"
#include "model/system.hpp"
#include "util/symbol.hpp"

namespace arcadia::acme {

/// A reference to a model element (or to a system itself, for `self`).
struct ElementRef {
  const model::Element* element = nullptr;  ///< null for system references
  const model::System* system = nullptr;    ///< containing system (or self)
  model::ElementKind kind = model::ElementKind::System;
  std::string owner;  ///< owning component/connector name for ports/roles

  const std::string& name() const;
  bool is_system() const { return kind == model::ElementKind::System; }

  friend bool operator==(const ElementRef& a, const ElementRef& b) {
    return a.element == b.element && a.system == b.system;
  }

  static ElementRef of_system(const model::System& sys) {
    return ElementRef{nullptr, &sys, model::ElementKind::System, ""};
  }
  static ElementRef of_component(const model::System& sys,
                                 const model::Component& c) {
    return ElementRef{&c, &sys, model::ElementKind::Component, ""};
  }
  static ElementRef of_connector(const model::System& sys,
                                 const model::Connector& c) {
    return ElementRef{&c, &sys, model::ElementKind::Connector, ""};
  }
  static ElementRef of_port(const model::System& sys, const model::Component& c,
                            const model::Port& p) {
    return ElementRef{&p, &sys, model::ElementKind::Port, c.name()};
  }
  static ElementRef of_role(const model::System& sys, const model::Connector& c,
                            const model::Role& r) {
    return ElementRef{&r, &sys, model::ElementKind::Role, c.name()};
  }
};

/// Runtime value domain of the expression language.
class EvalValue {
 public:
  enum class Kind { Nil, Bool, Number, String, Element, Set };
  using Set = std::vector<EvalValue>;

  EvalValue() : kind_(Kind::Nil) {}
  static EvalValue nil() { return EvalValue(); }
  EvalValue(bool b) : kind_(Kind::Bool), bool_(b) {}              // NOLINT
  EvalValue(double n) : kind_(Kind::Number), number_(n) {}        // NOLINT
  EvalValue(int n) : EvalValue(static_cast<double>(n)) {}         // NOLINT
  EvalValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT
  EvalValue(const char* s) : EvalValue(std::string(s)) {}         // NOLINT
  EvalValue(ElementRef e) : kind_(Kind::Element), element_(std::move(e)) {}  // NOLINT
  explicit EvalValue(Set set)
      : kind_(Kind::Set), set_(std::make_shared<Set>(std::move(set))) {}

  Kind kind() const { return kind_; }
  bool is_nil() const { return kind_ == Kind::Nil; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_element() const { return kind_ == Kind::Element; }
  bool is_set() const { return kind_ == Kind::Set; }

  /// Typed accessors; throw ScriptError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const ElementRef& as_element() const;
  const Set& as_set() const;

  /// Truthiness: only booleans are truthy/falsy (no implicit coercion).
  bool truthy() const;

  bool equals(const EvalValue& other) const;
  std::string to_string() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  ElementRef element_;
  std::shared_ptr<Set> set_;
};

class EvalContext;

/// Extension function: free functions callable from expressions (the
/// runtime-layer queries such as findGoodSGrp plug in here).
using ExprFn =
    std::function<EvalValue(std::vector<EvalValue>&, EvalContext&)>;
/// Method dispatch hook for `element.op(args)` calls (style operators);
/// installed by the script interpreter. The operator name arrives interned.
using MethodFn = std::function<EvalValue(const ElementRef&, util::Symbol,
                                         std::vector<EvalValue>&, EvalContext&)>;

/// Lexical scope chain + the model being queried. Bindings and function
/// registries are keyed by interned Symbols; per-evaluation lookups are
/// integer probes.
class EvalContext {
 public:
  explicit EvalContext(const model::System& self) : self_(&self) {}

  const model::System& self() const { return *self_; }

  void bind(util::Symbol name, EvalValue value) {
    bindings_.insert_or_assign(name, std::move(value));
  }
  void bind(std::string_view name, EvalValue value) {
    bind(util::Symbol::intern(name), std::move(value));
  }
  /// Walks the scope chain; null when unbound.
  const EvalValue* lookup(util::Symbol name) const;
  const EvalValue* lookup(std::string_view name) const {
    return lookup(util::Symbol::intern(name));
  }

  /// Child scope sharing registries and self.
  EvalContext child() const;

  void set_functions(util::SymbolMap<ExprFn>* fns) { functions_ = fns; }
  const ExprFn* find_function(util::Symbol name) const;
  void set_method_handler(MethodFn* handler) { method_handler_ = handler; }
  const MethodFn* method_handler() const;

  /// Element supplying unqualified property references (an invariant
  /// attached to a client evaluates `averageLatency` against that client).
  void set_context_element(ElementRef element) {
    context_element_ = std::move(element);
    has_context_element_ = true;
  }
  const ElementRef* context_element() const;

 private:
  const model::System* self_;
  const EvalContext* parent_ = nullptr;
  util::SymbolMap<EvalValue> bindings_;
  util::SymbolMap<ExprFn>* functions_ = nullptr;
  MethodFn* method_handler_ = nullptr;
  ElementRef context_element_;
  bool has_context_element_ = false;
};

class Evaluator {
 public:
  Evaluator();

  EvalValue evaluate(const Expr& expr, EvalContext& ctx) const;

  /// Evaluate an expression expected to produce a boolean (invariants,
  /// preconditions); throws ScriptError otherwise.
  bool evaluate_bool(const Expr& expr, EvalContext& ctx) const;

 private:
  EvalValue eval_member(const MemberExpr& m, EvalContext& ctx) const;
  EvalValue eval_call(const CallExpr& c, EvalContext& ctx) const;
  EvalValue eval_binary(const BinaryExpr& b, EvalContext& ctx) const;
  EvalValue eval_select(const SelectExpr& s, EvalContext& ctx) const;
  EvalValue eval_quant(const QuantExpr& q, EvalContext& ctx) const;
  EvalValue member_of_element(const ElementRef& ref, util::Symbol member,
                              int line) const;

  util::SymbolMap<ExprFn> builtins_;
};

}  // namespace arcadia::acme
