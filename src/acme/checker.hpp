// Static analysis of Armani expressions and repair scripts against an
// architectural style. Armani was a *typed* constraint language; this
// checker restores that: it catches misspelled properties, unknown
// operators and functions, arity errors, unbound names, and
// commit/abort misuse before a script ever runs against a live model —
// exactly the class of bug the paper's handwritten repairs were prone to
// (Figure 5 itself contains several).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "acme/ast.hpp"
#include "model/types.hpp"

namespace arcadia::acme {

/// Diagnostic severity shared by the checker and the semantic analyses
/// (acme/analysis.hpp). Errors fail strict verification runs (the arcverify
/// gate, FrameworkConfig::VerifyMode::Error); warnings are advisory.
enum class Severity { Error, Warning };

inline const char* to_string(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

struct CheckIssue {
  int line = 0;
  int column = 0;
  Severity severity = Severity::Error;
  std::string message;
  std::string to_string() const {
    return "line " + std::to_string(line) + ":" + std::to_string(column) +
           ": " + std::string(arcadia::acme::to_string(severity)) + ": " +
           message;
  }
};

/// Best-effort type vocabulary: style element-type names, "set{T}",
/// "number", "string", "boolean", "nil", "System", or "" (unknown —
/// checks involving it are skipped rather than reported).
class ScriptChecker {
 public:
  explicit ScriptChecker(const model::Style& style);

  /// Task-layer globals visible to scripts (maxServerLoad, ...).
  void declare_global(const std::string& name, std::string type = "number");
  /// Free functions: arity range and (optional) result type.
  void declare_function(const std::string& name, std::size_t min_args,
                        std::size_t max_args, std::string result_type = "");
  /// Style operators (element methods): the element type they apply to
  /// ("" = any) and their argument count.
  void declare_operator(const std::string& name, std::string target_type,
                        std::size_t args, std::string result_type = "boolean");

  /// Check a whole script: every invariant, strategy, and tactic.
  std::vector<CheckIssue> check_script(const Script& script);

  /// Check one expression; `context_type` is the element type unqualified
  /// property names resolve against (the invariant's element), may be "".
  std::vector<CheckIssue> check_expression(const Expr& expr,
                                           const std::string& context_type);

 private:
  struct FunctionSig {
    std::size_t min_args;
    std::size_t max_args;
    std::string result_type;
  };
  struct OperatorSig {
    std::string target_type;
    std::size_t args;
    std::string result_type;
  };
  struct Scope {
    std::map<std::string, std::string> names;  // name -> type
  };

  std::string infer(const Expr& expr, std::vector<Scope>& scopes,
                    const std::string& context_type,
                    std::vector<CheckIssue>& out);
  void check_stmt(const Stmt& stmt, std::vector<Scope>& scopes,
                  const std::string& context_type, bool in_strategy,
                  std::vector<CheckIssue>& out);
  std::string member_type(const std::string& object_type,
                          const std::string& member, int line, int column,
                          std::vector<CheckIssue>& out) const;
  const std::string* lookup(const std::vector<Scope>& scopes,
                            const std::string& name) const;
  static bool is_set(const std::string& type) {
    return type.rfind("set{", 0) == 0;
  }
  static std::string set_element(const std::string& type) {
    return is_set(type) ? type.substr(4, type.size() - 5) : "";
  }

  const model::Style& style_;
  std::map<std::string, std::string> globals_;
  std::map<std::string, FunctionSig> functions_;
  std::map<std::string, OperatorSig> operators_;
  const Script* script_ = nullptr;  // for tactic-call resolution
  /// Invariant conditions resolve names against an element chosen only at
  /// instantiation time; unknown names there are not errors.
  bool lenient_names_ = false;
};

/// A checker preloaded with the client-server style's operators
/// (addServer/move/removeServer), the runtime query functions
/// (findGoodSGrp, findServer-family), the expression builtins, and the
/// standard task-layer globals — ready to check the shipped scripts.
ScriptChecker make_client_server_checker(const model::Style& style);

}  // namespace arcadia::acme
