// AST for Armani-style expressions and the repair-script language.
// Figure 5 of the paper is written in exactly this surface syntax:
//
//   invariant r : averageLatency <= maxLatency  !-> fixLatency(r);
//   strategy fixLatency(badRole : ClientRoleT) = { ... }
//   tactic fixServerLoad(client : ClientT) : boolean = {
//     let loadedServerGroups : set{ServerGroupT} =
//       select sgrp : ServerGroupT in self.Components |
//         connected(sgrp, client) and sgrp.load > maxServerLoad;
//     if (size(loadedServerGroups) == 0) { return false; }
//     foreach sGrp in loadedServerGroups { sGrp.addServer(); }
//     return true;
//   }
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/symbol.hpp"

namespace arcadia::acme {

// ---------- expressions ----------

struct Expr {
  virtual ~Expr() = default;
  int line = 0;
  int column = 0;
};
using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  enum class Kind { Bool, Number, String, Nil } kind = Kind::Nil;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
};

/// A bare name: a binding, parameter, `self`, or a property looked up on
/// the contextual element (Armani's unqualified property reference, used by
/// invariants attached to an element: `averageLatency <= maxLatency`).
struct NameExpr : Expr {
  std::string name;
  /// Interned by the parser; evaluation resolves bindings and properties by
  /// integer id instead of string compares. Empty on hand-built ASTs — the
  /// evaluator then interns on the fly.
  util::Symbol sym;
};

/// object.member — property access or a built-in collection
/// (Components, Connectors, Ports, Roles, Representation, name, type).
struct MemberExpr : Expr {
  ExprPtr object;
  std::string member;
  /// Interned member name (see NameExpr::sym).
  util::Symbol sym;
};

/// Free-function call f(args) or method-style call obj.m(args); in the
/// latter case `callee` is a MemberExpr and the interpreter dispatches to a
/// style operator.
struct CallExpr : Expr {
  ExprPtr callee;
  std::vector<ExprPtr> args;
};

struct UnaryExpr : Expr {
  enum class Op { Not, Neg } op = Op::Not;
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  enum class Op {
    Or, And,
    Eq, Ne, Lt, Le, Gt, Ge,
    Add, Sub, Mul, Div, Mod,
  } op = Op::Or;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// select [one] binder : Type in domain | predicate
struct SelectExpr : Expr {
  bool one = false;
  std::string binder;
  util::Symbol binder_sym;  ///< interned `binder` (see NameExpr::sym)
  std::string type_name;  ///< empty = untyped binder
  ExprPtr domain;
  ExprPtr predicate;
};

/// exists/forall binder : Type in domain | predicate
struct QuantExpr : Expr {
  bool exists = true;
  std::string binder;
  util::Symbol binder_sym;  ///< interned `binder` (see NameExpr::sym)
  std::string type_name;
  ExprPtr domain;
  ExprPtr predicate;
};

// ---------- repair-script declarations & statements ----------

struct Stmt {
  virtual ~Stmt() = default;
  int line = 0;
  int column = 0;
};
using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  std::vector<StmtPtr> statements;
};

struct LetStmt : Stmt {
  std::string name;
  std::string type_annotation;  ///< informational ("ServerGroupT", "set{..}")
  ExprPtr value;
};

struct IfStmt : Stmt {
  ExprPtr condition;
  StmtPtr then_branch;
  StmtPtr else_branch;  ///< may be null
};

struct ForeachStmt : Stmt {
  std::string binder;
  ExprPtr domain;
  StmtPtr body;
};

struct ReturnStmt : Stmt {
  ExprPtr value;  ///< may be null (bare return)
};

/// `commit repair;`
struct CommitStmt : Stmt {};

/// `abort Reason;`
struct AbortStmt : Stmt {
  std::string reason;
};

struct ExprStmt : Stmt {
  ExprPtr expr;
};

struct Param {
  std::string name;
  std::string type_annotation;
};

struct TacticDecl {
  std::string name;
  std::vector<Param> params;
  std::string return_type;  ///< informational
  std::unique_ptr<BlockStmt> body;
  int line = 0;
  int column = 0;
};

struct StrategyDecl {
  std::string name;
  std::vector<Param> params;
  std::unique_ptr<BlockStmt> body;
  int line = 0;
  int column = 0;
};

/// invariant [name :] expr !-> handler(args);
struct InvariantDecl {
  std::string name;  ///< the bound violation variable ("r"); may be empty
  /// Shared so constraint instances survive the Script they came from.
  std::shared_ptr<Expr> condition;
  std::string handler;            ///< strategy to invoke on violation
  std::vector<std::string> args;  ///< argument names (usually the binder)
  int line = 0;
  int column = 0;
};

/// A parsed repair script: invariants plus the strategies and tactics they
/// reference.
struct Script {
  std::vector<InvariantDecl> invariants;
  std::vector<StrategyDecl> strategies;
  std::vector<TacticDecl> tactics;

  const StrategyDecl* find_strategy(const std::string& name) const {
    for (const auto& s : strategies) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
  const TacticDecl* find_tactic(const std::string& name) const {
    for (const auto& t : tactics) {
      if (t.name == name) return &t;
    }
    return nullptr;
  }
};

}  // namespace arcadia::acme
