// The Acme architecture description language (Garlan, Monroe, Wile):
// textual system descriptions with components, ports, connectors, roles,
// properties, representations, and attachments. parse_system loads a
// description into a model::System; print_system emits one back out
// (round-trip stable modulo ordering).
#pragma once

#include <memory>
#include <string>

#include "model/system.hpp"

namespace arcadia::acme {

/// Parse one `System name [: Style] = { ... }` declaration.
/// Throws ParseError with position information on malformed input.
std::unique_ptr<model::System> parse_system(const std::string& source);

/// Emit an Acme description of the system (deterministic ordering).
std::string print_system(const model::System& system);

/// The paper's software architecture (Figures 2 and 3): three server
/// groups of replicated servers serving six users over request/reply
/// connectors, ServerGrp1 refined by a representation holding its
/// replicas. Used by examples and tests.
const char* grid_acme_source();

}  // namespace arcadia::acme
