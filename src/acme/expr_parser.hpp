// Recursive-descent parser for Armani-style expressions. Also exposes the
// token-stream cursor so the ADL and script parsers can share it.
#pragma once

#include <string>
#include <vector>

#include "acme/ast.hpp"
#include "acme/lexer.hpp"

namespace arcadia::acme {

/// Token cursor with common expect/accept helpers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& take() {
    const Token& t = peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  bool at_keyword(const char* kw) const { return peek().is_keyword(kw); }
  bool accept(TokenKind kind) {
    if (!at(kind)) return false;
    take();
    return true;
  }
  bool accept_keyword(const char* kw) {
    if (!at_keyword(kw)) return false;
    take();
    return true;
  }
  const Token& expect(TokenKind kind, const std::string& context);
  std::string expect_identifier(const std::string& context);
  void expect_keyword(const char* kw, const std::string& context);
  [[noreturn]] void fail(const std::string& message) const;
  bool done() const { return at(TokenKind::EndOfFile); }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

/// Parse one expression from the stream (does not require EOF after).
ExprPtr parse_expression(TokenStream& ts);

/// Parse a standalone expression source string; requires full consumption.
ExprPtr parse_expression(const std::string& source);

}  // namespace arcadia::acme
