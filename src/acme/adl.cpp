#include "acme/adl.hpp"

#include <sstream>

#include "acme/expr_parser.hpp"
#include "acme/lexer.hpp"

namespace arcadia::acme {

namespace {

model::PropertyValue parse_property_value(TokenStream& ts) {
  const Token& t = ts.peek();
  switch (t.kind) {
    case TokenKind::Number: {
      ts.take();
      // Integral literals without a decimal point stay ints.
      if (t.text.find('.') == std::string::npos &&
          t.text.find('e') == std::string::npos &&
          t.text.find('E') == std::string::npos) {
        return model::PropertyValue(static_cast<std::int64_t>(t.number));
      }
      return model::PropertyValue(t.number);
    }
    case TokenKind::Minus: {
      ts.take();
      const Token& n = ts.expect(TokenKind::Number, "after unary minus");
      if (n.text.find('.') == std::string::npos) {
        return model::PropertyValue(-static_cast<std::int64_t>(n.number));
      }
      return model::PropertyValue(-n.number);
    }
    case TokenKind::String:
      ts.take();
      return model::PropertyValue(t.text);
    case TokenKind::Identifier:
      if (t.text == "true" || t.text == "false") {
        ts.take();
        return model::PropertyValue(t.text == "true");
      }
      [[fallthrough]];
    default:
      ts.fail("expected a property value (number, string, true/false)");
  }
}

/// Property IDENT [: type-name] [= value] ;
void parse_property(TokenStream& ts, model::Element& element) {
  const std::string name = ts.expect_identifier("as property name");
  std::string declared_type;
  if (ts.accept(TokenKind::Colon)) {
    declared_type = ts.expect_identifier("as property type");
  }
  if (ts.accept(TokenKind::Assign)) {
    model::PropertyValue value = parse_property_value(ts);
    // Honor the declared type: "float = 0" must stay a double through a
    // print/parse round trip.
    if ((declared_type == "float" || declared_type == "double") &&
        value.is_int()) {
      value = model::PropertyValue(static_cast<double>(value.as_int()));
    } else if (declared_type == "int" && value.is_double()) {
      value = model::PropertyValue(static_cast<std::int64_t>(value.as_double()));
    }
    element.set_property(name, value);
  }
  ts.expect(TokenKind::Semicolon, "after property");
}

void parse_system_body(TokenStream& ts, model::System& system);

void parse_component_body(TokenStream& ts, model::Component& component) {
  ts.expect(TokenKind::LBrace, "to open component body");
  while (!ts.at(TokenKind::RBrace)) {
    if (ts.accept_keyword("Port")) {
      const std::string pname = ts.expect_identifier("as port name");
      std::string ptype;
      if (ts.accept(TokenKind::Colon)) {
        ptype = ts.expect_identifier("as port type");
      }
      model::Port& port = component.add_port(pname, ptype);
      if (ts.accept(TokenKind::Assign)) {
        ts.expect(TokenKind::LBrace, "to open port body");
        while (!ts.at(TokenKind::RBrace)) {
          ts.expect_keyword("Property", "in port body");
          parse_property(ts, port);
        }
        ts.take();
      }
      ts.accept(TokenKind::Semicolon);
      continue;
    }
    if (ts.accept_keyword("Property")) {
      parse_property(ts, component);
      continue;
    }
    if (ts.accept_keyword("Representation")) {
      ts.expect(TokenKind::Assign, "after 'Representation'");
      ts.expect(TokenKind::LBrace, "to open representation");
      ts.expect_keyword("System", "inside representation");
      const std::string rep_name = ts.expect_identifier("as representation system name");
      (void)rep_name;
      if (ts.accept(TokenKind::Colon)) ts.expect_identifier("as style name");
      ts.expect(TokenKind::Assign, "in representation system");
      ts.expect(TokenKind::LBrace, "to open representation system body");
      parse_system_body(ts, component.representation());
      ts.expect(TokenKind::RBrace, "to close representation system body");
      ts.accept(TokenKind::Semicolon);
      ts.expect(TokenKind::RBrace, "to close representation");
      ts.accept(TokenKind::Semicolon);
      continue;
    }
    ts.fail("expected 'Port', 'Property', or 'Representation' in component");
  }
  ts.take();  // '}'
}

void parse_connector_body(TokenStream& ts, model::Connector& connector) {
  ts.expect(TokenKind::LBrace, "to open connector body");
  while (!ts.at(TokenKind::RBrace)) {
    if (ts.accept_keyword("Role")) {
      const std::string rname = ts.expect_identifier("as role name");
      std::string rtype;
      if (ts.accept(TokenKind::Colon)) {
        rtype = ts.expect_identifier("as role type");
      }
      model::Role& role = connector.add_role(rname, rtype);
      if (ts.accept(TokenKind::Assign)) {
        ts.expect(TokenKind::LBrace, "to open role body");
        while (!ts.at(TokenKind::RBrace)) {
          ts.expect_keyword("Property", "in role body");
          parse_property(ts, role);
        }
        ts.take();
      }
      ts.accept(TokenKind::Semicolon);
      continue;
    }
    if (ts.accept_keyword("Property")) {
      parse_property(ts, connector);
      continue;
    }
    ts.fail("expected 'Role' or 'Property' in connector");
  }
  ts.take();
}

void parse_system_body(TokenStream& ts, model::System& system) {
  while (!ts.at(TokenKind::RBrace)) {
    if (ts.accept_keyword("Component")) {
      const std::string name = ts.expect_identifier("as component name");
      std::string type;
      if (ts.accept(TokenKind::Colon)) {
        type = ts.expect_identifier("as component type");
      }
      model::Component& comp = system.add_component(name, type);
      if (ts.accept(TokenKind::Assign)) parse_component_body(ts, comp);
      ts.accept(TokenKind::Semicolon);
      continue;
    }
    if (ts.accept_keyword("Connector")) {
      const std::string name = ts.expect_identifier("as connector name");
      std::string type;
      if (ts.accept(TokenKind::Colon)) {
        type = ts.expect_identifier("as connector type");
      }
      model::Connector& conn = system.add_connector(name, type);
      if (ts.accept(TokenKind::Assign)) parse_connector_body(ts, conn);
      ts.accept(TokenKind::Semicolon);
      continue;
    }
    if (ts.accept_keyword("Attachment")) {
      model::Attachment a;
      a.component = ts.expect_identifier("as attachment component");
      ts.expect(TokenKind::Dot, "in attachment");
      a.port = ts.expect_identifier("as attachment port");
      ts.expect_keyword("to", "in attachment");
      a.connector = ts.expect_identifier("as attachment connector");
      ts.expect(TokenKind::Dot, "in attachment");
      a.role = ts.expect_identifier("as attachment role");
      ts.expect(TokenKind::Semicolon, "after attachment");
      system.attach(a);
      continue;
    }
    ts.fail("expected 'Component', 'Connector', or 'Attachment'");
  }
}

void print_properties(std::ostringstream& out, const model::Element& el,
                      const std::string& indent) {
  for (const auto& entry : el.properties()) {
    const model::PropertyValue& value = entry.value;
    out << indent << "Property " << entry.key.str();
    if (value.is_bool()) {
      out << " : boolean = " << (value.as_bool() ? "true" : "false");
    } else if (value.is_int()) {
      out << " : int = " << value.as_int();
    } else if (value.is_double()) {
      out << " : float = " << value.as_double();
    } else {
      out << " : string = \"" << value.as_string() << "\"";
    }
    out << ";\n";
  }
}

void print_system_body(std::ostringstream& out, const model::System& system,
                       const std::string& indent);

void print_component(std::ostringstream& out, const model::Component& comp,
                     const std::string& indent) {
  out << indent << "Component " << comp.name();
  if (!comp.type_name().empty()) out << " : " << comp.type_name();
  out << " = {\n";
  print_properties(out, comp, indent + "  ");
  for (const model::Port* port : comp.ports()) {
    out << indent << "  Port " << port->name();
    if (!port->type_name().empty()) out << " : " << port->type_name();
    if (!port->properties().empty()) {
      out << " = {\n";
      print_properties(out, *port, indent + "    ");
      out << indent << "  }";
    }
    out << ";\n";
  }
  if (comp.has_representation()) {
    out << indent << "  Representation = {\n";
    out << indent << "    System " << comp.representation_const().name()
        << " = {\n";
    print_system_body(out, comp.representation_const(), indent + "      ");
    out << indent << "    }\n" << indent << "  };\n";
  }
  out << indent << "};\n";
}

void print_system_body(std::ostringstream& out, const model::System& system,
                       const std::string& indent) {
  for (const model::Component* comp : system.components()) {
    print_component(out, *comp, indent);
  }
  for (const model::Connector* conn : system.connectors()) {
    out << indent << "Connector " << conn->name();
    if (!conn->type_name().empty()) out << " : " << conn->type_name();
    out << " = {\n";
    print_properties(out, *conn, indent + "  ");
    for (const model::Role* role : conn->roles()) {
      out << indent << "  Role " << role->name();
      if (!role->type_name().empty()) out << " : " << role->type_name();
      if (!role->properties().empty()) {
        out << " = {\n";
        print_properties(out, *role, indent + "    ");
        out << indent << "  }";
      }
      out << ";\n";
    }
    out << indent << "};\n";
  }
  for (const model::Attachment& a : system.attachments()) {
    out << indent << "Attachment " << a.component << "." << a.port << " to "
        << a.connector << "." << a.role << ";\n";
  }
}

}  // namespace

std::unique_ptr<model::System> parse_system(const std::string& source) {
  TokenStream ts(tokenize(source));
  ts.expect_keyword("System", "at start of description");
  const std::string name = ts.expect_identifier("as system name");
  if (ts.accept(TokenKind::Colon)) {
    ts.expect_identifier("as style name");
  }
  ts.expect(TokenKind::Assign, "before system body");
  ts.expect(TokenKind::LBrace, "to open system body");
  auto system = std::make_unique<model::System>(name);
  parse_system_body(ts, *system);
  ts.expect(TokenKind::RBrace, "to close system body");
  ts.accept(TokenKind::Semicolon);
  if (!ts.done()) ts.fail("unexpected input after system declaration");
  return system;
}

std::string print_system(const model::System& system) {
  std::ostringstream out;
  out << "System " << system.name() << " = {\n";
  print_system_body(out, system, "  ");
  out << "};\n";
  return out.str();
}

const char* grid_acme_source() {
  // Figures 2 and 3 of the paper: three server groups of replicated
  // servers serving six users; ServerGrp1 refined by a representation
  // (ServerGrpRep) holding Server1..Server3.
  return R"acme(
System GridStorage : ClientServerStyle = {
  Component ServerGrp1 : ServerGroupT = {
    Property load : float = 0.0;
    Property replicationCount : int = 3;
    Property utilization : float = 0.0;
    Port provide : ProvideT;
    Representation = {
      System ServerGrp1_rep = {
        Component Server1 : ServerT = { Property isActive : boolean = true; };
        Component Server2 : ServerT = { Property isActive : boolean = true; };
        Component Server3 : ServerT = { Property isActive : boolean = true; };
      }
    };
  };
  Component ServerGrp2 : ServerGroupT = {
    Property load : float = 0.0;
    Property replicationCount : int = 2;
    Property utilization : float = 0.0;
    Port provide : ProvideT;
    Representation = {
      System ServerGrp2_rep = {
        Component Server5 : ServerT = { Property isActive : boolean = true; };
        Component Server6 : ServerT = { Property isActive : boolean = true; };
      }
    };
  };
  Component ServerGrp3 : ServerGroupT = {
    Property load : float = 0.0;
    Property replicationCount : int = 2;
    Property utilization : float = 0.0;
    Port provide : ProvideT;
    Representation = {
      System ServerGrp3_rep = {
        Component Server8 : ServerT = { Property isActive : boolean = true; };
        Component Server9 : ServerT = { Property isActive : boolean = true; };
      }
    };
  };
  Component User1 : ClientT = {
    Property averageLatency : float = 0.0;
    Property maxLatency : float = 2.0;
    Port request : RequestT;
  };
  Component User2 : ClientT = {
    Property averageLatency : float = 0.0;
    Property maxLatency : float = 2.0;
    Port request : RequestT;
  };
  Component User3 : ClientT = {
    Property averageLatency : float = 0.0;
    Property maxLatency : float = 2.0;
    Port request : RequestT;
  };
  Component User4 : ClientT = {
    Property averageLatency : float = 0.0;
    Property maxLatency : float = 2.0;
    Port request : RequestT;
  };
  Component User5 : ClientT = {
    Property averageLatency : float = 0.0;
    Property maxLatency : float = 2.0;
    Port request : RequestT;
  };
  Component User6 : ClientT = {
    Property averageLatency : float = 0.0;
    Property maxLatency : float = 2.0;
    Port request : RequestT;
  };
  Connector Conn1 : ClientServerConnT = {
    Role clientSide : ClientRoleT = { Property bandwidth : float = 10000000.0; };
    Role serverSide : ServerRoleT;
  };
  Connector Conn2 : ClientServerConnT = {
    Role clientSide : ClientRoleT = { Property bandwidth : float = 10000000.0; };
    Role serverSide : ServerRoleT;
  };
  Connector Conn3 : ClientServerConnT = {
    Role clientSide : ClientRoleT = { Property bandwidth : float = 10000000.0; };
    Role serverSide : ServerRoleT;
  };
  Connector Conn4 : ClientServerConnT = {
    Role clientSide : ClientRoleT = { Property bandwidth : float = 10000000.0; };
    Role serverSide : ServerRoleT;
  };
  Connector Conn5 : ClientServerConnT = {
    Role clientSide : ClientRoleT = { Property bandwidth : float = 10000000.0; };
    Role serverSide : ServerRoleT;
  };
  Connector Conn6 : ClientServerConnT = {
    Role clientSide : ClientRoleT = { Property bandwidth : float = 10000000.0; };
    Role serverSide : ServerRoleT;
  };
  Attachment User1.request to Conn1.clientSide;
  Attachment ServerGrp1.provide to Conn1.serverSide;
  Attachment User2.request to Conn2.clientSide;
  Attachment ServerGrp1.provide to Conn2.serverSide;
  Attachment User3.request to Conn3.clientSide;
  Attachment ServerGrp2.provide to Conn3.serverSide;
  Attachment User4.request to Conn4.clientSide;
  Attachment ServerGrp2.provide to Conn4.serverSide;
  Attachment User5.request to Conn5.clientSide;
  Attachment ServerGrp3.provide to Conn5.serverSide;
  Attachment User6.request to Conn6.clientSide;
  Attachment ServerGrp3.provide to Conn6.serverSide;
};
)acme";
}

}  // namespace arcadia::acme
