#include "acme/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace arcadia::acme {

namespace {
[[noreturn]] void fail(int line, const std::string& message) {
  throw ScriptError(message + (line > 0 ? " (line " + std::to_string(line) + ")"
                                        : ""));
}

const std::string kSelfName = "self";

/// Pre-interned names the evaluator compares against on every member access.
struct WellKnown {
  util::Symbol self = util::Symbol::intern("self");
  util::Symbol components = util::Symbol::intern("Components");
  util::Symbol connectors = util::Symbol::intern("Connectors");
  util::Symbol ports = util::Symbol::intern("Ports");
  util::Symbol roles = util::Symbol::intern("Roles");
  util::Symbol representation = util::Symbol::intern("Representation");
  util::Symbol name = util::Symbol::intern("name");
  util::Symbol type = util::Symbol::intern("type");
};

const WellKnown& wk() {
  static const WellKnown w;
  return w;
}

/// Parser-interned symbol, or a one-off intern for hand-built AST nodes.
util::Symbol sym_of(const NameExpr& n) {
  return n.sym.empty() ? util::Symbol::intern(n.name) : n.sym;
}
util::Symbol sym_of(const MemberExpr& m) {
  return m.sym.empty() ? util::Symbol::intern(m.member) : m.sym;
}
}  // namespace

const std::string& ElementRef::name() const {
  if (element) return element->name();
  if (system) return system->name();
  return kSelfName;
}

bool EvalValue::as_bool() const {
  if (!is_bool()) throw ScriptError("expected boolean, got " + to_string());
  return bool_;
}

double EvalValue::as_number() const {
  if (!is_number()) throw ScriptError("expected number, got " + to_string());
  return number_;
}

const std::string& EvalValue::as_string() const {
  if (!is_string()) throw ScriptError("expected string, got " + to_string());
  return string_;
}

const ElementRef& EvalValue::as_element() const {
  if (!is_element()) {
    throw ScriptError("expected element reference, got " + to_string());
  }
  return element_;
}

const EvalValue::Set& EvalValue::as_set() const {
  if (!is_set()) throw ScriptError("expected set, got " + to_string());
  return *set_;
}

bool EvalValue::truthy() const {
  if (!is_bool()) {
    throw ScriptError("condition is not boolean: " + to_string());
  }
  return bool_;
}

bool EvalValue::equals(const EvalValue& other) const {
  if (is_nil() || other.is_nil()) return is_nil() && other.is_nil();
  if (is_number() && other.is_number()) return number_ == other.number_;
  if (is_bool() && other.is_bool()) return bool_ == other.bool_;
  if (is_string() && other.is_string()) return string_ == other.string_;
  if (is_element() && other.is_element()) return element_ == other.element_;
  if (is_set() && other.is_set()) {
    if (set_->size() != other.set_->size()) return false;
    for (std::size_t i = 0; i < set_->size(); ++i) {
      if (!(*set_)[i].equals((*other.set_)[i])) return false;
    }
    return true;
  }
  return false;
}

std::string EvalValue::to_string() const {
  switch (kind_) {
    case Kind::Nil: return "nil";
    case Kind::Bool: return bool_ ? "true" : "false";
    case Kind::Number: {
      std::string s = std::to_string(number_);
      return s;
    }
    case Kind::String: return "\"" + string_ + "\"";
    case Kind::Element: return "<" + element_.name() + ">";
    case Kind::Set: {
      std::string s = "{";
      for (std::size_t i = 0; i < set_->size(); ++i) {
        if (i) s += ", ";
        s += (*set_)[i].to_string();
      }
      return s + "}";
    }
  }
  return "?";
}

const EvalValue* EvalContext::lookup(util::Symbol name) const {
  if (const EvalValue* found = bindings_.find(name)) return found;
  return parent_ ? parent_->lookup(name) : nullptr;
}

EvalContext EvalContext::child() const {
  EvalContext c(*self_);
  c.parent_ = this;
  c.functions_ = functions_;
  c.method_handler_ = method_handler_;
  c.context_element_ = context_element_;
  c.has_context_element_ = has_context_element_;
  return c;
}

const ExprFn* EvalContext::find_function(util::Symbol name) const {
  if (functions_) {
    if (const ExprFn* found = functions_->find(name)) return found;
  }
  return parent_ ? parent_->find_function(name) : nullptr;
}

const MethodFn* EvalContext::method_handler() const {
  if (method_handler_) return method_handler_;
  return parent_ ? parent_->method_handler() : nullptr;
}

const ElementRef* EvalContext::context_element() const {
  if (has_context_element_) return &context_element_;
  return parent_ ? parent_->context_element() : nullptr;
}

// ---------------------------------------------------------------------------

Evaluator::Evaluator() {
  builtins_[util::Symbol::intern("size")] = [](std::vector<EvalValue>& args,
                         EvalContext&) -> EvalValue {
    if (args.size() != 1) throw ScriptError("size() takes one argument");
    return EvalValue(static_cast<double>(args[0].as_set().size()));
  };
  builtins_[util::Symbol::intern("empty")] = [](std::vector<EvalValue>& args,
                          EvalContext&) -> EvalValue {
    if (args.size() != 1) throw ScriptError("empty() takes one argument");
    return EvalValue(args[0].as_set().empty());
  };
  builtins_[util::Symbol::intern("contains")] = [](std::vector<EvalValue>& args,
                             EvalContext&) -> EvalValue {
    if (args.size() != 2) throw ScriptError("contains(set, x) takes two arguments");
    for (const EvalValue& v : args[0].as_set()) {
      if (v.equals(args[1])) return EvalValue(true);
    }
    return EvalValue(false);
  };
  builtins_[util::Symbol::intern("connected")] = [](std::vector<EvalValue>& args,
                              EvalContext& ctx) -> EvalValue {
    if (args.size() != 2) {
      throw ScriptError("connected(a, b) takes two arguments");
    }
    const ElementRef& a = args[0].as_element();
    const ElementRef& b = args[1].as_element();
    const model::System& sys = a.system ? *a.system : ctx.self();
    return EvalValue(sys.connected(a.name(), b.name()));
  };
  builtins_[util::Symbol::intern("attached")] = [](std::vector<EvalValue>& args,
                             EvalContext& ctx) -> EvalValue {
    if (args.size() != 2) {
      throw ScriptError("attached(x, y) takes two arguments");
    }
    ElementRef a = args[0].as_element();
    ElementRef b = args[1].as_element();
    // Normalize to (port-ish, role).
    if (a.kind == model::ElementKind::Role) std::swap(a, b);
    if (b.kind != model::ElementKind::Role) {
      throw ScriptError("attached(): one argument must be a role");
    }
    const model::System& sys = b.system ? *b.system : ctx.self();
    for (const model::Attachment& att : sys.attachments()) {
      if (att.connector != b.owner || att.role != b.name()) continue;
      if (a.kind == model::ElementKind::Port) {
        if (att.component == a.owner && att.port == a.name()) return EvalValue(true);
      } else if (a.kind == model::ElementKind::Component) {
        if (att.component == a.name()) return EvalValue(true);
      }
    }
    return EvalValue(false);
  };
  builtins_[util::Symbol::intern("abs")] = [](std::vector<EvalValue>& args, EvalContext&) -> EvalValue {
    if (args.size() != 1) throw ScriptError("abs() takes one argument");
    return EvalValue(std::fabs(args[0].as_number()));
  };
  builtins_[util::Symbol::intern("min")] = [](std::vector<EvalValue>& args, EvalContext&) -> EvalValue {
    if (args.size() != 2) throw ScriptError("min() takes two arguments");
    return EvalValue(std::min(args[0].as_number(), args[1].as_number()));
  };
  builtins_[util::Symbol::intern("max")] = [](std::vector<EvalValue>& args, EvalContext&) -> EvalValue {
    if (args.size() != 2) throw ScriptError("max() takes two arguments");
    return EvalValue(std::max(args[0].as_number(), args[1].as_number()));
  };
  builtins_[util::Symbol::intern("hasProperty")] = [](std::vector<EvalValue>& args,
                                EvalContext&) -> EvalValue {
    if (args.size() != 2) {
      throw ScriptError("hasProperty(element, name) takes two arguments");
    }
    const ElementRef& e = args[0].as_element();
    if (!e.element) return EvalValue(false);
    return EvalValue(e.element->has_property(args[1].as_string()));
  };
}

EvalValue Evaluator::evaluate(const Expr& expr, EvalContext& ctx) const {
  if (const auto* lit = dynamic_cast<const LiteralExpr*>(&expr)) {
    switch (lit->kind) {
      case LiteralExpr::Kind::Bool: return EvalValue(lit->bool_value);
      case LiteralExpr::Kind::Number: return EvalValue(lit->number_value);
      case LiteralExpr::Kind::String: return EvalValue(lit->string_value);
      case LiteralExpr::Kind::Nil: return EvalValue::nil();
    }
  }
  if (const auto* name = dynamic_cast<const NameExpr*>(&expr)) {
    const util::Symbol sym = sym_of(*name);
    if (sym == wk().self) return EvalValue(ElementRef::of_system(ctx.self()));
    if (const EvalValue* bound = ctx.lookup(sym)) return *bound;
    // Unqualified property reference against the contextual element.
    if (const ElementRef* el = ctx.context_element()) {
      if (el->element && el->element->has_property(sym)) {
        return member_of_element(*el, sym, name->line);
      }
    }
    fail(name->line, "unbound name '" + name->name + "'");
  }
  if (const auto* member = dynamic_cast<const MemberExpr*>(&expr)) {
    return eval_member(*member, ctx);
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(&expr)) {
    return eval_call(*call, ctx);
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
    EvalValue v = evaluate(*unary->operand, ctx);
    if (unary->op == UnaryExpr::Op::Not) return EvalValue(!v.truthy());
    return EvalValue(-v.as_number());
  }
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
    return eval_binary(*binary, ctx);
  }
  if (const auto* select = dynamic_cast<const SelectExpr*>(&expr)) {
    return eval_select(*select, ctx);
  }
  if (const auto* quant = dynamic_cast<const QuantExpr*>(&expr)) {
    return eval_quant(*quant, ctx);
  }
  fail(expr.line, "unknown expression node");
}

bool Evaluator::evaluate_bool(const Expr& expr, EvalContext& ctx) const {
  return evaluate(expr, ctx).truthy();
}

EvalValue Evaluator::member_of_element(const ElementRef& ref,
                                       util::Symbol member, int line) const {
  using model::ElementKind;
  // System-level collections.
  if (ref.is_system()) {
    const model::System& sys = *ref.system;
    if (member == wk().components) {
      EvalValue::Set set;
      for (const model::Component* c : sys.components()) {
        set.push_back(EvalValue(ElementRef::of_component(sys, *c)));
      }
      return EvalValue(std::move(set));
    }
    if (member == wk().connectors) {
      EvalValue::Set set;
      for (const model::Connector* c : sys.connectors()) {
        set.push_back(EvalValue(ElementRef::of_connector(sys, *c)));
      }
      return EvalValue(std::move(set));
    }
    if (member == wk().name) return EvalValue(sys.name());
    fail(line, "system has no member '" + member.str() + "'");
  }

  const model::Element& el = *ref.element;
  if (member == wk().name) return EvalValue(el.name());
  if (member == wk().type) return EvalValue(el.type_name());

  if (ref.kind == ElementKind::Component) {
    const auto& comp = static_cast<const model::Component&>(el);
    if (member == wk().ports) {
      EvalValue::Set set;
      for (const model::Port* p : comp.ports()) {
        set.push_back(EvalValue(ElementRef::of_port(*ref.system, comp, *p)));
      }
      return EvalValue(std::move(set));
    }
    if (member == wk().representation) {
      if (!comp.has_representation()) return EvalValue::nil();
      return EvalValue(ElementRef::of_system(comp.representation_const()));
    }
  }
  if (ref.kind == ElementKind::Connector) {
    const auto& conn = static_cast<const model::Connector&>(el);
    if (member == wk().roles) {
      EvalValue::Set set;
      for (const model::Role* r : conn.roles()) {
        set.push_back(EvalValue(ElementRef::of_role(*ref.system, conn, *r)));
      }
      return EvalValue(std::move(set));
    }
  }

  // Property access.
  if (!el.has_property(member)) {
    fail(line, std::string(to_string(ref.kind)) + " '" + el.name() +
                   "' has no property or member '" + member.str() + "'");
  }
  const model::PropertyValue& v = el.property(member);
  if (v.is_bool()) return EvalValue(v.as_bool());
  if (v.is_numeric()) return EvalValue(v.as_double());
  return EvalValue(v.as_string());
}

EvalValue Evaluator::eval_member(const MemberExpr& m, EvalContext& ctx) const {
  EvalValue object = evaluate(*m.object, ctx);
  if (!object.is_element()) {
    fail(m.line, "member access '." + m.member + "' on non-element value " +
                     object.to_string());
  }
  return member_of_element(object.as_element(), sym_of(m), m.line);
}

EvalValue Evaluator::eval_call(const CallExpr& c, EvalContext& ctx) const {
  std::vector<EvalValue> args;
  args.reserve(c.args.size());

  // Method-style call: element.op(args) -> style operator dispatch.
  if (const auto* member = dynamic_cast<const MemberExpr*>(c.callee.get())) {
    EvalValue object = evaluate(*member->object, ctx);
    for (const ExprPtr& a : c.args) args.push_back(evaluate(*a, ctx));
    if (!object.is_element()) {
      fail(c.line, "method call on non-element value " + object.to_string());
    }
    const MethodFn* handler = ctx.method_handler();
    if (!handler) {
      fail(c.line, "no operator dispatch available for '" + member->member +
                       "' (method calls are only valid inside repair scripts)");
    }
    return (*handler)(object.as_element(), sym_of(*member), args, ctx);
  }

  const auto* name = dynamic_cast<const NameExpr*>(c.callee.get());
  if (!name) fail(c.line, "call of non-function expression");
  for (const ExprPtr& a : c.args) args.push_back(evaluate(*a, ctx));

  const util::Symbol callee = sym_of(*name);
  if (const ExprFn* fn = ctx.find_function(callee)) {
    return (*fn)(args, ctx);
  }
  if (const ExprFn* builtin = builtins_.find(callee)) {
    return (*builtin)(args, ctx);
  }
  fail(c.line, "unknown function '" + name->name + "'");
}

EvalValue Evaluator::eval_binary(const BinaryExpr& b, EvalContext& ctx) const {
  using Op = BinaryExpr::Op;
  // Short-circuit logical operators.
  if (b.op == Op::And) {
    if (!evaluate(*b.lhs, ctx).truthy()) return EvalValue(false);
    return EvalValue(evaluate(*b.rhs, ctx).truthy());
  }
  if (b.op == Op::Or) {
    if (evaluate(*b.lhs, ctx).truthy()) return EvalValue(true);
    return EvalValue(evaluate(*b.rhs, ctx).truthy());
  }

  EvalValue lhs = evaluate(*b.lhs, ctx);
  EvalValue rhs = evaluate(*b.rhs, ctx);
  switch (b.op) {
    case Op::Eq: return EvalValue(lhs.equals(rhs));
    case Op::Ne: return EvalValue(!lhs.equals(rhs));
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      int cmp;
      if (lhs.is_number() && rhs.is_number()) {
        double x = lhs.as_number();
        double y = rhs.as_number();
        cmp = (x < y) ? -1 : (x > y) ? 1 : 0;
      } else if (lhs.is_string() && rhs.is_string()) {
        int c = lhs.as_string().compare(rhs.as_string());
        cmp = (c < 0) ? -1 : (c > 0) ? 1 : 0;
      } else {
        fail(b.line, "cannot order " + lhs.to_string() + " and " +
                         rhs.to_string());
      }
      switch (b.op) {
        case Op::Lt: return EvalValue(cmp < 0);
        case Op::Le: return EvalValue(cmp <= 0);
        case Op::Gt: return EvalValue(cmp > 0);
        default: return EvalValue(cmp >= 0);
      }
    }
    case Op::Add:
      if (lhs.is_string() && rhs.is_string()) {
        return EvalValue(lhs.as_string() + rhs.as_string());
      }
      return EvalValue(lhs.as_number() + rhs.as_number());
    case Op::Sub: return EvalValue(lhs.as_number() - rhs.as_number());
    case Op::Mul: return EvalValue(lhs.as_number() * rhs.as_number());
    case Op::Div: {
      double d = rhs.as_number();
      if (d == 0.0) fail(b.line, "division by zero");
      return EvalValue(lhs.as_number() / d);
    }
    case Op::Mod: {
      double d = rhs.as_number();
      if (d == 0.0) fail(b.line, "modulo by zero");
      return EvalValue(std::fmod(lhs.as_number(), d));
    }
    default:
      fail(b.line, "unhandled binary operator");
  }
}

namespace {
bool binder_matches(const EvalValue& v, const std::string& type_name) {
  if (type_name.empty()) return true;
  if (!v.is_element() || !v.as_element().element) return false;
  return v.as_element().element->type_name() == type_name;
}
}  // namespace

EvalValue Evaluator::eval_select(const SelectExpr& s, EvalContext& ctx) const {
  EvalValue domain = evaluate(*s.domain, ctx);
  const util::Symbol binder =
      s.binder_sym.empty() ? util::Symbol::intern(s.binder) : s.binder_sym;
  EvalValue::Set out;
  for (const EvalValue& item : domain.as_set()) {
    if (!binder_matches(item, s.type_name)) continue;
    EvalContext scope = ctx.child();
    scope.bind(binder, item);
    if (evaluate(*s.predicate, scope).truthy()) {
      if (s.one) return item;
      out.push_back(item);
    }
  }
  if (s.one) return EvalValue::nil();
  return EvalValue(std::move(out));
}

EvalValue Evaluator::eval_quant(const QuantExpr& q, EvalContext& ctx) const {
  EvalValue domain = evaluate(*q.domain, ctx);
  const util::Symbol binder =
      q.binder_sym.empty() ? util::Symbol::intern(q.binder) : q.binder_sym;
  for (const EvalValue& item : domain.as_set()) {
    if (!binder_matches(item, q.type_name)) continue;
    EvalContext scope = ctx.child();
    scope.bind(binder, item);
    bool holds = evaluate(*q.predicate, scope).truthy();
    if (q.exists && holds) return EvalValue(true);
    if (!q.exists && !holds) return EvalValue(false);
  }
  return EvalValue(!q.exists);
}

}  // namespace arcadia::acme
