// Parser for the repair-script language of Figure 5: invariants wired to
// repair strategies, strategies sequencing guarded tactics, tactics written
// as imperative programs over the architectural model.
#pragma once

#include <string>

#include "acme/ast.hpp"
#include "acme/expr_parser.hpp"

namespace arcadia::acme {

/// Parse a whole script (any number of invariant / strategy / tactic
/// declarations, in any order). Throws ParseError with position info.
Script parse_script(const std::string& source);

/// The paper's Figure 5 repair script (with its surface typos fixed), plus
/// the "third repair (not shown)": trimServers, which releases a server
/// from an underutilized group. This is the script the framework installs
/// by default; tests check it parses and behaves identically to the C++
/// strategy implementation.
const char* figure5_script();

}  // namespace arcadia::acme
