#include "acme/effects.hpp"

#include "model/types.hpp"

namespace arcadia::acme {

const char* to_string(EffectDirection d) {
  switch (d) {
    case EffectDirection::Increase: return "increase";
    case EffectDirection::Decrease: return "decrease";
    case EffectDirection::Unknown: return "unknown";
  }
  return "unknown";
}

void EffectTable::declare(OperatorEffect effect) {
  operators_[effect.name] = std::move(effect);
}

void EffectTable::declare_global(const std::string& name) {
  globals_.insert(name);
}

const OperatorEffect* EffectTable::find(const std::string& name) const {
  auto it = operators_.find(name);
  return it == operators_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Expression rendering (canonical, single line — used for guard comparison).

namespace {

const char* binary_op_text(BinaryExpr::Op op) {
  using Op = BinaryExpr::Op;
  switch (op) {
    case Op::Or: return "or";
    case Op::And: return "and";
    case Op::Eq: return "==";
    case Op::Ne: return "!=";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::Add: return "+";
    case Op::Sub: return "-";
    case Op::Mul: return "*";
    case Op::Div: return "/";
    case Op::Mod: return "%";
  }
  return "?";
}

std::string trim_number(double value) {
  std::string s = std::to_string(value);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

std::string render_expr(const Expr& expr) {
  if (const auto* lit = dynamic_cast<const LiteralExpr*>(&expr)) {
    switch (lit->kind) {
      case LiteralExpr::Kind::Bool: return lit->bool_value ? "true" : "false";
      case LiteralExpr::Kind::Number: return trim_number(lit->number_value);
      case LiteralExpr::Kind::String: return "\"" + lit->string_value + "\"";
      case LiteralExpr::Kind::Nil: return "nil";
    }
  }
  if (const auto* name = dynamic_cast<const NameExpr*>(&expr)) {
    return name->name;
  }
  if (const auto* member = dynamic_cast<const MemberExpr*>(&expr)) {
    return render_expr(*member->object) + "." + member->member;
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(&expr)) {
    std::string out = render_expr(*call->callee) + "(";
    for (std::size_t i = 0; i < call->args.size(); ++i) {
      if (i) out += ", ";
      out += render_expr(*call->args[i]);
    }
    return out + ")";
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
    const char* op = unary->op == UnaryExpr::Op::Not ? "!" : "-";
    return std::string(op) + render_expr(*unary->operand);
  }
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
    return "(" + render_expr(*binary->lhs) + " " +
           binary_op_text(binary->op) + " " + render_expr(*binary->rhs) + ")";
  }
  if (const auto* sel = dynamic_cast<const SelectExpr*>(&expr)) {
    std::string out = sel->one ? "selectOne " : "select ";
    out += sel->binder;
    if (!sel->type_name.empty()) out += " : " + sel->type_name;
    out += " in " + render_expr(*sel->domain) + " | " +
           render_expr(*sel->predicate);
    return out;
  }
  if (const auto* quant = dynamic_cast<const QuantExpr*>(&expr)) {
    std::string out = quant->exists ? "exists " : "forall ";
    out += quant->binder;
    if (!quant->type_name.empty()) out += " : " + quant->type_name;
    out += " in " + render_expr(*quant->domain) + " | " +
           render_expr(*quant->predicate);
    return out;
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Free-property collection.

namespace {

/// Names that are structural navigation, not observed properties.
bool is_structural_member(const std::string& member) {
  return member == "name" || member == "type" || member == "Ports" ||
         member == "Roles" || member == "Components" ||
         member == "Connectors" || member == "Representation";
}

void collect_free(const Expr& expr, const EffectTable& table,
                  std::set<std::string>& bound, std::set<std::string>& out) {
  if (const auto* name = dynamic_cast<const NameExpr*>(&expr)) {
    if (name->name == "self" || table.is_global(name->name)) return;
    if (bound.count(name->name) != 0) return;
    out.insert(name->name);
    return;
  }
  if (const auto* member = dynamic_cast<const MemberExpr*>(&expr)) {
    // `x.prop` reads prop regardless of what x is bound to; the object
    // side contributes navigation, not property reads.
    if (!is_structural_member(member->member)) out.insert(member->member);
    collect_free(*member->object, table, bound, out);
    return;
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(&expr)) {
    // The callee of `x.op(...)` is a MemberExpr but names an operator or
    // function, not a property — only descend into the object and args.
    if (const auto* target =
            dynamic_cast<const MemberExpr*>(call->callee.get())) {
      collect_free(*target->object, table, bound, out);
    }
    for (const ExprPtr& a : call->args) collect_free(*a, table, bound, out);
    return;
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
    collect_free(*unary->operand, table, bound, out);
    return;
  }
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
    collect_free(*binary->lhs, table, bound, out);
    collect_free(*binary->rhs, table, bound, out);
    return;
  }
  if (const auto* sel = dynamic_cast<const SelectExpr*>(&expr)) {
    collect_free(*sel->domain, table, bound, out);
    const bool inserted = bound.insert(sel->binder).second;
    collect_free(*sel->predicate, table, bound, out);
    if (inserted) bound.erase(sel->binder);
    return;
  }
  if (const auto* quant = dynamic_cast<const QuantExpr*>(&expr)) {
    collect_free(*quant->domain, table, bound, out);
    const bool inserted = bound.insert(quant->binder).second;
    collect_free(*quant->predicate, table, bound, out);
    if (inserted) bound.erase(quant->binder);
    return;
  }
  // Literals: nothing.
}

}  // namespace

std::set<std::string> free_properties(const Expr& expr,
                                      const EffectTable& table,
                                      const std::set<std::string>& bound) {
  std::set<std::string> names = bound;
  std::set<std::string> out;
  collect_free(expr, table, names, out);
  // A bound binder name (the invariant's violation variable) is not a
  // property; a bare bound name never reaches `out`, but `r.load` style
  // member reads through it are kept — which is what we want.
  return out;
}

// ---------------------------------------------------------------------------
// Effect inference.

namespace {

class EffectWalker {
 public:
  EffectWalker(const Script& script, const EffectTable& table)
      : script_(script), table_(table) {}

  TacticEffects summarize(const TacticDecl& tactic) {
    TacticEffects fx;
    fx.name = tactic.name;
    fx.line = tactic.line;
    fx.column = tactic.column;
    std::set<std::string> bound;
    for (const Param& p : tactic.params) bound.insert(p.name);
    walk_stmt(*tactic.body, tactic.name, bound, fx);
    return fx;
  }

 private:
  void note_reads(const Expr& expr, const std::set<std::string>& bound,
                  TacticEffects& fx) {
    std::set<std::string> names = bound;
    std::set<std::string> reads;
    collect_free(expr, table_, names, reads);
    fx.reads.insert(reads.begin(), reads.end());
  }

  void apply_operator(const OperatorEffect& op, const CallExpr& call,
                      const std::string& tactic, TacticEffects& fx) {
    fx.writes.insert(op.writes.begin(), op.writes.end());
    for (const auto& [prop, dir] : op.influences) {
      auto it = fx.influences.find(prop);
      if (it == fx.influences.end()) {
        fx.influences.emplace(prop, dir);
      } else if (it->second != dir) {
        it->second = EffectDirection::Unknown;
      }
    }
    fx.adds_element = fx.adds_element || op.adds_element;
    fx.removes_element = fx.removes_element || op.removes_element;
    fx.rewires = fx.rewires || op.rewires;
    fx.operators.push_back(OperatorUse{op.name, tactic, call.line,
                                       call.column});
  }

  void walk_expr(const Expr& expr, const std::string& tactic,
                 const std::set<std::string>& bound, TacticEffects& fx) {
    note_reads(expr, bound, fx);
    find_calls(expr, tactic, bound, fx);
  }

  /// Recursively locate operator / tactic calls inside an expression.
  void find_calls(const Expr& expr, const std::string& tactic,
                  const std::set<std::string>& bound, TacticEffects& fx) {
    if (const auto* call = dynamic_cast<const CallExpr*>(&expr)) {
      if (const auto* target =
              dynamic_cast<const MemberExpr*>(call->callee.get())) {
        if (const OperatorEffect* op = table_.find(target->member)) {
          apply_operator(*op, *call, tactic, fx);
        } else if (!is_structural_member(target->member)) {
          // Unknown operator — record the call site with an empty effect
          // so analysis can warn about it.
          fx.operators.push_back(OperatorUse{target->member, tactic,
                                             call->line, call->column});
        }
        find_calls(*target->object, tactic, bound, fx);
      } else if (const auto* callee =
                     dynamic_cast<const NameExpr*>(call->callee.get())) {
        if (const TacticDecl* sub = script_.find_tactic(callee->name)) {
          fx.calls.insert(sub->name);
          inline_callee(*sub, tactic, fx);
        }
      }
      for (const ExprPtr& a : call->args) find_calls(*a, tactic, bound, fx);
      return;
    }
    if (const auto* member = dynamic_cast<const MemberExpr*>(&expr)) {
      find_calls(*member->object, tactic, bound, fx);
      return;
    }
    if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
      find_calls(*unary->operand, tactic, bound, fx);
      return;
    }
    if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
      find_calls(*binary->lhs, tactic, bound, fx);
      find_calls(*binary->rhs, tactic, bound, fx);
      return;
    }
    if (const auto* sel = dynamic_cast<const SelectExpr*>(&expr)) {
      find_calls(*sel->domain, tactic, bound, fx);
      find_calls(*sel->predicate, tactic, bound, fx);
      return;
    }
    if (const auto* quant = dynamic_cast<const QuantExpr*>(&expr)) {
      find_calls(*quant->domain, tactic, bound, fx);
      find_calls(*quant->predicate, tactic, bound, fx);
      return;
    }
  }

  /// Transitive closure: fold a callee tactic's full summary into the
  /// caller (cycle-guarded; the script language has no recursion, but a
  /// hand-built AST might).
  void inline_callee(const TacticDecl& callee, const std::string& caller,
                     TacticEffects& fx) {
    if (!in_progress_.insert(callee.name).second) return;
    TacticEffects sub = summarize(callee);
    in_progress_.erase(callee.name);
    fx.reads.insert(sub.reads.begin(), sub.reads.end());
    fx.writes.insert(sub.writes.begin(), sub.writes.end());
    for (const auto& [prop, dir] : sub.influences) {
      auto it = fx.influences.find(prop);
      if (it == fx.influences.end()) {
        fx.influences.emplace(prop, dir);
      } else if (it->second != dir) {
        it->second = EffectDirection::Unknown;
      }
    }
    for (OperatorUse use : sub.operators) {
      use.tactic = caller;
      fx.operators.push_back(use);
    }
    fx.adds_element = fx.adds_element || sub.adds_element;
    fx.removes_element = fx.removes_element || sub.removes_element;
    fx.rewires = fx.rewires || sub.rewires;
  }

  void walk_stmt(const Stmt& stmt, const std::string& tactic,
                 std::set<std::string> bound, TacticEffects& fx) {
    if (const auto* block = dynamic_cast<const BlockStmt*>(&stmt)) {
      for (const StmtPtr& s : block->statements) {
        if (const auto* let = dynamic_cast<const LetStmt*>(s.get())) {
          walk_expr(*let->value, tactic, bound, fx);
          bound.insert(let->name);
          continue;
        }
        walk_stmt(*s, tactic, bound, fx);
      }
      return;
    }
    if (const auto* let = dynamic_cast<const LetStmt*>(&stmt)) {
      walk_expr(*let->value, tactic, bound, fx);
      return;
    }
    if (const auto* ifs = dynamic_cast<const IfStmt*>(&stmt)) {
      walk_expr(*ifs->condition, tactic, bound, fx);
      walk_stmt(*ifs->then_branch, tactic, bound, fx);
      if (ifs->else_branch) walk_stmt(*ifs->else_branch, tactic, bound, fx);
      return;
    }
    if (const auto* fe = dynamic_cast<const ForeachStmt*>(&stmt)) {
      walk_expr(*fe->domain, tactic, bound, fx);
      bound.insert(fe->binder);
      walk_stmt(*fe->body, tactic, bound, fx);
      return;
    }
    if (const auto* ret = dynamic_cast<const ReturnStmt*>(&stmt)) {
      if (ret->value) walk_expr(*ret->value, tactic, bound, fx);
      return;
    }
    if (const auto* es = dynamic_cast<const ExprStmt*>(&stmt)) {
      walk_expr(*es->expr, tactic, bound, fx);
      return;
    }
    // Commit/Abort: no effect contribution.
  }

  const Script& script_;
  const EffectTable& table_;
  std::set<std::string> in_progress_;
};

}  // namespace

ScriptEffects infer_effects(const Script& script, const EffectTable& table) {
  ScriptEffects out;
  EffectWalker walker(script, table);
  for (const TacticDecl& tactic : script.tactics) {
    out.tactics.emplace(tactic.name, walker.summarize(tactic));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Client-server style table.

EffectTable make_client_server_effects() {
  EffectTable table;
  table.declare_global("maxServerLoad");
  table.declare_global("minBandwidth");
  table.declare_global("minUtilization");
  table.declare_global("minReplicas");

  using D = EffectDirection;
  // Footprints mirror repair/style_ops.cpp exactly: these `writes` are the
  // properties the operators journal via SetProperty. `influences` add the
  // environment-mediated predictions the paper's Table 1 implies.
  OperatorEffect add;
  add.name = "addServer";
  add.target_type = model::cs::kServerGroupT;
  add.writes = {model::cs::kPropReplication};
  add.influences = {{model::cs::kPropReplication, D::Increase},
                    {model::cs::kPropLoad, D::Decrease},
                    {model::cs::kPropUtilization, D::Decrease},
                    {model::cs::kPropAvgLatency, D::Decrease}};
  add.adds_element = true;
  add.element_type = model::cs::kServerT;
  table.declare(std::move(add));

  OperatorEffect remove;
  remove.name = "removeServer";
  remove.target_type = model::cs::kServerGroupT;
  remove.writes = {model::cs::kPropReplication};
  remove.influences = {{model::cs::kPropReplication, D::Decrease},
                       {model::cs::kPropLoad, D::Increase},
                       {model::cs::kPropUtilization, D::Increase}};
  remove.removes_element = true;
  remove.element_type = model::cs::kServerT;
  table.declare(std::move(remove));

  OperatorEffect move;
  move.name = "move";
  move.target_type = model::cs::kClientT;
  move.writes = {"boundTo"};
  move.influences = {{model::cs::kPropAvgLatency, D::Decrease},
                     {model::cs::kPropMaxLatency, D::Decrease},
                     {model::cs::kPropBandwidth, D::Increase},
                     {model::cs::kPropLoad, D::Unknown},
                     {model::cs::kPropUtilization, D::Unknown}};
  move.rewires = true;
  table.declare(std::move(move));

  return table;
}

}  // namespace arcadia::acme
