// Control-flow summaries over repair-script bodies.
//
// Tactics are small imperative programs; strategies are FirstSuccess
// chains of `if (tactic(...)) { ... commit repair; } else if ...`. This
// module extracts just enough flow structure for the semantic analysis:
//   - tactic guards: the condition under which the body proceeds past its
//     leading `if (g) { return false; }` early-outs (normalized for
//     implication tests);
//   - always_succeeds: every path that survives the guards returns a
//     literal `true` (so a later FirstSuccess sibling is unreachable when
//     its guard is implied);
//   - strategy termination: every path through a strategy body ends in
//     `commit repair;` or `abort R;`.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "acme/ast.hpp"
#include "acme/effects.hpp"

namespace arcadia::acme {

/// One conjunct of a tactic's pass-guard, normalized when it has the shape
/// `subject REL threshold`. Non-relational conjuncts keep only the
/// rendered text (comparison falls back to textual equality).
struct GuardConjunct {
  enum class Rel { Lt, Le, Gt, Ge, Eq, Ne, Opaque } rel = Rel::Opaque;
  std::string subject;      ///< canonical rendering of the lhs
  double threshold = 0.0;   ///< numeric rhs (valid unless Opaque/symbolic)
  bool numeric = false;     ///< rhs was a number literal
  std::string rhs_text;     ///< canonical rendering of the rhs
  std::string text;         ///< canonical rendering of the whole conjunct
};

/// The conditions under which a tactic's body *proceeds* (conjunction).
/// Leading `if (g) { return false; }` statements contribute ¬g.
struct TacticGuard {
  std::vector<GuardConjunct> conjuncts;
};

/// Extract the pass-guard of a tactic: the negations of its leading
/// early-out conditions. `let` bindings before/between the early-outs are
/// inlined by substitution so guards stay comparable across tactics.
TacticGuard extract_guard(const TacticDecl& tactic);

/// True when every path through the tactic body that survives the leading
/// early-outs ends in `return true;` (a literal) — i.e. whenever the guard
/// holds, the tactic reports success.
bool always_succeeds(const TacticDecl& tactic);

/// True when `weaker` holds whenever `stronger` holds (conjunct-wise:
/// every conjunct of `weaker` is implied by some conjunct of `stronger`).
/// Conservative — false when implication cannot be established.
bool guard_implies(const TacticGuard& stronger, const TacticGuard& weaker);

/// One arm of a strategy's FirstSuccess chain:
/// `if (tactic(args)) { ... } else if ...`.
struct FirstSuccessArm {
  std::string tactic;  ///< callee tactic name ("" if not a plain call)
  int line = 0;
  int column = 0;
};

/// Extract the FirstSuccess arms of a strategy body (empty when the body
/// does not have the chain shape).
std::vector<FirstSuccessArm> first_success_arms(const StrategyDecl& strategy);

/// True when every path through the strategy body ends in commit or abort.
bool strategy_always_concludes(const StrategyDecl& strategy);

}  // namespace arcadia::acme
