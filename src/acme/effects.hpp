// Symbolic effect inference over parsed repair scripts.
//
// The checker (checker.hpp) answers "is this script well-typed against the
// style?"; this layer answers "what does this script *do*?" — which
// properties each tactic reads, which it writes (through style operators),
// and which it merely *influences* (an operator's predicted effect on
// observed properties, e.g. addServer is expected to drive load down).
// The analysis in analysis.hpp consumes these sets to flag ineffective
// repairs (the Figure 5 bug class) and conflicting strategies; the plan
// optimizer uses the per-operator write footprints as dependency edges; and
// the test-suite soundness oracle checks every journaled OpRecord of a
// committed repair against the inferred write set of the tactic that
// produced it.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "acme/ast.hpp"

namespace arcadia::acme {

/// Predicted direction an operator pushes an observed property.
enum class EffectDirection { Increase, Decrease, Unknown };

const char* to_string(EffectDirection d);

/// Static model of one style operator's runtime footprint.
struct OperatorEffect {
  std::string name;         ///< operator name ("addServer")
  std::string target_type;  ///< element type it applies to ("" = any)
  /// Properties the operator's journal footprint sets directly
  /// (SetProperty OpRecords) — the *write set* proper.
  std::set<std::string> writes;
  /// Properties the operator is expected to move indirectly (via the
  /// environment), and in which direction. Superset of `writes` in
  /// spirit: a write with a known direction appears here too.
  std::map<std::string, EffectDirection> influences;
  bool adds_element = false;     ///< journals AddComponent
  bool removes_element = false;  ///< journals RemoveComponent
  bool rewires = false;          ///< journals Attach/Detach
  std::string element_type;      ///< type added/removed ("" if none)
};

/// Registry of operator effects for one style, plus the task-layer globals
/// (threshold names that are *parameters*, not model properties — they are
/// excluded from read/support sets).
class EffectTable {
 public:
  void declare(OperatorEffect effect);
  void declare_global(const std::string& name);

  const OperatorEffect* find(const std::string& name) const;
  bool is_global(const std::string& name) const { return globals_.count(name) != 0; }
  const std::set<std::string>& globals() const { return globals_; }

 private:
  std::map<std::string, OperatorEffect> operators_;
  std::set<std::string> globals_;
};

/// One operator call site inside a tactic body.
struct OperatorUse {
  std::string op;      ///< operator name
  std::string tactic;  ///< enclosing tactic
  int line = 0;
  int column = 0;
};

/// Inferred effect summary for one tactic (transitively closed over the
/// tactics it calls).
struct TacticEffects {
  std::string name;
  int line = 0;
  int column = 0;
  /// Properties the body reads (member accesses and unqualified context
  /// property names; excludes globals, parameters, lets, binders).
  std::set<std::string> reads;
  /// Union of the write sets of every operator the body can invoke.
  std::set<std::string> writes;
  /// Union of operator influences; conflicting directions collapse to
  /// Unknown.
  std::map<std::string, EffectDirection> influences;
  /// Operator call sites, in source order (includes callee tactics' sites).
  std::vector<OperatorUse> operators;
  /// Names of tactics this tactic calls directly.
  std::set<std::string> calls;
  bool adds_element = false;
  bool removes_element = false;
  bool rewires = false;
};

/// Effect summaries for every tactic in a script, keyed by tactic name.
struct ScriptEffects {
  std::map<std::string, TacticEffects> tactics;

  const TacticEffects* find(const std::string& name) const {
    auto it = tactics.find(name);
    return it == tactics.end() ? nullptr : &it->second;
  }
};

/// Walk every tactic body and compute its effect summary. Unknown
/// operator calls contribute nothing to the write set (analysis.hpp
/// reports them separately as `unknown-operator-effect`).
ScriptEffects infer_effects(const Script& script, const EffectTable& table);

/// Free property names of an expression: unqualified/member property
/// reads, minus `table` globals, `self`, and `bound` names. This is the
/// *support* of an invariant — the properties whose values decide it.
std::set<std::string> free_properties(const Expr& expr,
                                      const EffectTable& table,
                                      const std::set<std::string>& bound = {});

/// Canonical single-line rendering of an expression (for guard comparison
/// and diagnostics).
std::string render_expr(const Expr& expr);

/// The effect table for the client-server style: addServer / removeServer
/// / move footprints matching repair/style_ops.cpp journal behaviour, and
/// the four task-layer threshold globals.
EffectTable make_client_server_effects();

}  // namespace arcadia::acme
