#include "acme/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace arcadia::acme {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::String: return "string";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Comma: return "','";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Eq: return "'=='";
    case TokenKind::Ne: return "'!='";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Not: return "'!'";
    case TokenKind::AndAnd: return "'&&'";
    case TokenKind::OrOr: return "'||'";
    case TokenKind::Arrow: return "'->'";
    case TokenKind::BangArrow: return "'!->'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::EndOfFile: return "end of input";
  }
  return "?";
}

namespace {

class Cursor {
 public:
  explicit Cursor(const std::string& src) : src_(src) {}
  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char take() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> out;
  Cursor cur(source);

  auto push = [&out](TokenKind kind, std::string text, int line, int column) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    out.push_back(std::move(t));
  };

  while (!cur.done()) {
    const int line = cur.line();
    const int col = cur.column();
    char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.take();
      continue;
    }
    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.take();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.take();
      cur.take();
      bool closed = false;
      while (!cur.done()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          cur.take();
          cur.take();
          closed = true;
          break;
        }
        cur.take();
      }
      if (!closed) throw ParseError("unterminated block comment", line, col);
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (!cur.done() && (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                             cur.peek() == '_')) {
        text += cur.take();
      }
      push(TokenKind::Identifier, std::move(text), line, col);
      continue;
    }
    // Numbers (integer or decimal, optional exponent).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      std::string text;
      while (!cur.done() && (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
                             cur.peek() == '.')) {
        text += cur.take();
      }
      if (cur.peek() == 'e' || cur.peek() == 'E') {
        text += cur.take();
        if (cur.peek() == '+' || cur.peek() == '-') text += cur.take();
        while (!cur.done() &&
               std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          text += cur.take();
        }
      }
      Token t;
      t.kind = TokenKind::Number;
      t.text = text;
      t.number = std::strtod(text.c_str(), nullptr);
      t.line = line;
      t.column = col;
      out.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      cur.take();
      std::string text;
      bool closed = false;
      while (!cur.done()) {
        char d = cur.take();
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\' && !cur.done()) {
          char e = cur.take();
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            default: text += e;
          }
          continue;
        }
        text += d;
      }
      if (!closed) throw ParseError("unterminated string literal", line, col);
      push(TokenKind::String, std::move(text), line, col);
      continue;
    }

    // Operators / punctuation.
    cur.take();
    switch (c) {
      case '{': push(TokenKind::LBrace, "{", line, col); break;
      case '}': push(TokenKind::RBrace, "}", line, col); break;
      case '(': push(TokenKind::LParen, "(", line, col); break;
      case ')': push(TokenKind::RParen, ")", line, col); break;
      case '[': push(TokenKind::LBracket, "[", line, col); break;
      case ']': push(TokenKind::RBracket, "]", line, col); break;
      case ';': push(TokenKind::Semicolon, ";", line, col); break;
      case ':': push(TokenKind::Colon, ":", line, col); break;
      case ',': push(TokenKind::Comma, ",", line, col); break;
      case '.': push(TokenKind::Dot, ".", line, col); break;
      case '%': push(TokenKind::Percent, "%", line, col); break;
      case '+': push(TokenKind::Plus, "+", line, col); break;
      case '*': push(TokenKind::Star, "*", line, col); break;
      case '/': push(TokenKind::Slash, "/", line, col); break;
      case '=':
        if (cur.peek() == '=') {
          cur.take();
          push(TokenKind::Eq, "==", line, col);
        } else {
          push(TokenKind::Assign, "=", line, col);
        }
        break;
      case '!':
        if (cur.peek() == '=') {
          cur.take();
          push(TokenKind::Ne, "!=", line, col);
        } else if (cur.peek() == '-' && cur.peek(1) == '>') {
          cur.take();
          cur.take();
          push(TokenKind::BangArrow, "!->", line, col);
        } else {
          push(TokenKind::Not, "!", line, col);
        }
        break;
      case '<':
        if (cur.peek() == '=') {
          cur.take();
          push(TokenKind::Le, "<=", line, col);
        } else {
          push(TokenKind::Lt, "<", line, col);
        }
        break;
      case '>':
        if (cur.peek() == '=') {
          cur.take();
          push(TokenKind::Ge, ">=", line, col);
        } else {
          push(TokenKind::Gt, ">", line, col);
        }
        break;
      case '-':
        if (cur.peek() == '>') {
          cur.take();
          push(TokenKind::Arrow, "->", line, col);
        } else {
          push(TokenKind::Minus, "-", line, col);
        }
        break;
      case '&':
        if (cur.peek() == '&') {
          cur.take();
          push(TokenKind::AndAnd, "&&", line, col);
        } else {
          throw ParseError("stray '&'", line, col);
        }
        break;
      case '|':
        if (cur.peek() == '|') {
          cur.take();
          push(TokenKind::OrOr, "||", line, col);
        } else {
          push(TokenKind::Pipe, "|", line, col);
        }
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line,
                         col);
    }
  }
  Token eof;
  eof.kind = TokenKind::EndOfFile;
  eof.line = cur.line();
  eof.column = cur.column();
  out.push_back(std::move(eof));
  return out;
}

}  // namespace arcadia::acme
