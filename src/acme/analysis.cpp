#include "acme/analysis.hpp"

#include <algorithm>

#include "acme/flow.hpp"

namespace arcadia::acme::analysis {

namespace {

void report(std::vector<AnalysisIssue>& out, std::string rule,
            Severity severity, int line, int column, std::string message) {
  out.push_back(AnalysisIssue{std::move(rule), severity, line, column,
                              std::move(message)});
}

std::string join(const std::set<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// Desired repair direction per support property, derived from the
/// invariant's threshold form. The condition states what *should hold*;
/// a violation is its negation, so `p <= X` violated means p is too high
/// and the repair should drive p down (and/or X up when X is itself a
/// property). Disjunctions contribute each disjunct's directions (any
/// branch becoming true discharges the violation); anything else is
/// Unknown (every influence counts as potentially helpful).
void desired_directions(const Expr& cond, const EffectTable& table,
                        const std::set<std::string>& bound,
                        std::map<std::string, EffectDirection>& out) {
  const auto* binary = dynamic_cast<const BinaryExpr*>(&cond);
  if (!binary) return;
  using Op = BinaryExpr::Op;
  if (binary->op == Op::Or || binary->op == Op::And) {
    desired_directions(*binary->lhs, table, bound, out);
    desired_directions(*binary->rhs, table, bound, out);
    return;
  }
  EffectDirection lhs_dir;
  switch (binary->op) {
    case Op::Le:
    case Op::Lt:
      lhs_dir = EffectDirection::Decrease;  // p too high -> push down
      break;
    case Op::Ge:
    case Op::Gt:
      lhs_dir = EffectDirection::Increase;  // p too low -> push up
      break;
    default:
      return;
  }
  const EffectDirection rhs_dir = lhs_dir == EffectDirection::Decrease
                                      ? EffectDirection::Increase
                                      : EffectDirection::Decrease;
  for (const std::string& p : free_properties(*binary->lhs, table, bound)) {
    auto it = out.find(p);
    if (it == out.end()) {
      out.emplace(p, lhs_dir);
    } else if (it->second != lhs_dir) {
      it->second = EffectDirection::Unknown;
    }
  }
  for (const std::string& p : free_properties(*binary->rhs, table, bound)) {
    auto it = out.find(p);
    if (it == out.end()) {
      out.emplace(p, rhs_dir);
    } else if (it->second != rhs_dir) {
      it->second = EffectDirection::Unknown;
    }
  }
}

bool helpful(EffectDirection have, EffectDirection want) {
  return have == EffectDirection::Unknown ||
         want == EffectDirection::Unknown || have == want;
}

struct StrategyProfile {
  const InvariantDecl* invariant = nullptr;
  const StrategyDecl* strategy = nullptr;
  std::set<std::string> support;
  std::map<std::string, EffectDirection> desired;
  /// Union of arm-tactic influences (conflicts collapse to Unknown).
  std::map<std::string, EffectDirection> influences;
};

}  // namespace

std::vector<std::string> rule_ids() {
  return {"conflicting-strategies", "dead-tactic",  "ineffective-tactic",
          "no-verdict",             "scenario-config",
          "uncosted-operator",      "ungauged-constraint",
          "unknown-operator-effect"};
}

std::vector<AnalysisIssue> analyze_script(const Script& script,
                                          const EffectTable& table) {
  std::vector<AnalysisIssue> out;
  const ScriptEffects effects = infer_effects(script, table);

  // --- unknown-operator-effect (warning) ---------------------------------
  // Report each unknown call site once, from the *defining* tactic's
  // summary (transitively inlined copies would duplicate it).
  for (const TacticDecl& tactic : script.tactics) {
    const TacticEffects* fx = effects.find(tactic.name);
    if (!fx) continue;
    for (const OperatorUse& use : fx->operators) {
      if (use.tactic != tactic.name) continue;  // inlined from a callee
      if (table.find(use.op)) continue;
      report(out, "unknown-operator-effect", Severity::Warning, use.line,
             use.column,
             "operator '" + use.op +
                 "' has no declared effect; its writes are invisible to "
                 "effect analysis");
    }
  }

  // --- no-verdict (error) -------------------------------------------------
  for (const StrategyDecl& strategy : script.strategies) {
    if (!strategy_always_concludes(strategy)) {
      report(out, "no-verdict", Severity::Error, strategy.line,
             strategy.column,
             "strategy '" + strategy.name +
                 "' has a path that ends without 'commit repair' or "
                 "'abort'");
    }
  }

  // --- per-invariant profiles --------------------------------------------
  std::vector<StrategyProfile> profiles;
  for (const InvariantDecl& inv : script.invariants) {
    if (inv.handler.empty()) continue;
    const StrategyDecl* strategy = script.find_strategy(inv.handler);
    if (!strategy) continue;  // checker reports this
    StrategyProfile profile;
    profile.invariant = &inv;
    profile.strategy = strategy;
    std::set<std::string> bound;
    if (!inv.name.empty()) bound.insert(inv.name);
    profile.support = free_properties(*inv.condition, table, bound);
    desired_directions(*inv.condition, table, bound, profile.desired);

    // --- ineffective-tactic (error) --------------------------------------
    for (const FirstSuccessArm& arm : first_success_arms(*strategy)) {
      if (arm.tactic.empty()) continue;
      const TacticEffects* fx = effects.find(arm.tactic);
      if (!fx) continue;  // undefined tactic: checker reports it
      for (const auto& [prop, dir] : fx->influences) {
        auto it = profile.influences.find(prop);
        if (it == profile.influences.end()) {
          profile.influences.emplace(prop, dir);
        } else if (it->second != dir) {
          it->second = EffectDirection::Unknown;
        }
      }
      bool can_help = false;
      for (const std::string& prop : profile.support) {
        auto inf = fx->influences.find(prop);
        if (inf == fx->influences.end()) continue;
        auto want = profile.desired.find(prop);
        const EffectDirection want_dir = want == profile.desired.end()
                                             ? EffectDirection::Unknown
                                             : want->second;
        if (helpful(inf->second, want_dir)) {
          can_help = true;
          break;
        }
      }
      if (!can_help) {
        const TacticDecl* decl = script.find_tactic(arm.tactic);
        report(out, "ineffective-tactic", Severity::Error,
               decl ? decl->line : arm.line, decl ? decl->column : arm.column,
               "tactic '" + arm.tactic + "' cannot discharge invariant '" +
                   render_expr(*inv.condition) +
                   "': none of its effects move a support property {" +
                   join(profile.support) + "} in a helpful direction");
      }
    }
    profiles.push_back(std::move(profile));
  }

  // --- dead-tactic (error) ------------------------------------------------
  for (const StrategyDecl& strategy : script.strategies) {
    const std::vector<FirstSuccessArm> arms = first_success_arms(strategy);
    for (std::size_t j = 1; j < arms.size(); ++j) {
      if (arms[j].tactic.empty()) continue;
      const TacticDecl* later = script.find_tactic(arms[j].tactic);
      if (!later) continue;
      const TacticGuard later_guard = extract_guard(*later);
      for (std::size_t i = 0; i < j; ++i) {
        if (arms[i].tactic.empty()) continue;
        const TacticDecl* earlier = script.find_tactic(arms[i].tactic);
        if (!earlier || !always_succeeds(*earlier)) continue;
        if (guard_implies(later_guard, extract_guard(*earlier))) {
          report(out, "dead-tactic", Severity::Error, arms[j].line,
                 arms[j].column,
                 "tactic '" + arms[j].tactic +
                     "' can never succeed here: whenever its guard holds, "
                     "earlier sibling '" + arms[i].tactic +
                     "' already succeeds");
          break;
        }
      }
    }
  }

  // --- conflicting-strategies (warning) ----------------------------------
  for (std::size_t a = 0; a < profiles.size(); ++a) {
    for (std::size_t b = a + 1; b < profiles.size(); ++b) {
      const StrategyProfile& pa = profiles[a];
      const StrategyProfile& pb = profiles[b];
      if (pa.strategy == pb.strategy) continue;
      // Only strategies watching overlapping state can oscillate: a
      // disjoint-support pair (latency repair vs utilization trim) tugging
      // replicationCount both ways is the designed equilibrium, not a bug.
      std::set<std::string> overlap;
      std::set_intersection(pa.support.begin(), pa.support.end(),
                            pb.support.begin(), pb.support.end(),
                            std::inserter(overlap, overlap.begin()));
      if (overlap.empty()) continue;
      for (const std::string& prop : overlap) {
        auto ia = pa.influences.find(prop);
        auto ib = pb.influences.find(prop);
        if (ia == pa.influences.end() || ib == pb.influences.end()) continue;
        if (ia->second == EffectDirection::Unknown ||
            ib->second == EffectDirection::Unknown ||
            ia->second == ib->second) {
          continue;
        }
        report(out, "conflicting-strategies", Severity::Warning,
               pb.strategy->line, pb.strategy->column,
               "strategies '" + pa.strategy->name + "' and '" +
                   pb.strategy->name + "' watch '" + prop +
                   "' and push it in opposite directions (" +
                   to_string(ia->second) + " vs " + to_string(ib->second) +
                   "): repairs may oscillate");
      }
    }
  }

  return out;
}

std::vector<AnalysisIssue> verify_deployment(const DeploymentView& view) {
  std::vector<AnalysisIssue> out;

  std::map<std::string, std::set<std::string>> fed;  // element -> props
  for (const GaugeFeed& feed : view.gauge_feeds) {
    fed[feed.element].insert(feed.property);
  }

  // --- ungauged-constraint (error) ---------------------------------------
  for (const ConstraintView& c : view.constraints) {
    if (c.reads.empty()) continue;  // structural condition; nothing to feed
    auto it = fed.find(c.element);
    bool any_fed = false;
    if (it != fed.end()) {
      for (const std::string& prop : c.reads) {
        if (it->second.count(prop) != 0) {
          any_fed = true;
          break;
        }
      }
    }
    if (!any_fed) {
      report(out, "ungauged-constraint", Severity::Error, c.line, c.column,
             "constraint '" + c.id + "' on '" + c.element +
                 "' reads {" + join(c.reads) +
                 "} but no gauge on that element produces any of them: it "
                 "can never trip");
    }
  }

  // --- uncosted-operator (error) -----------------------------------------
  std::set<std::string> reported;
  for (const OperatorUse& use : view.operators_used) {
    if (!reported.insert(use.op).second) continue;
    auto cost = view.operator_costs_s.find(use.op);
    if (cost == view.operator_costs_s.end() || cost->second <= 0.0) {
      report(out, "uncosted-operator", Severity::Error, use.line, use.column,
             "operator '" + use.op + "' (reachable via tactic '" +
                 use.tactic +
                 "') has no declared environment cost: plan estimates "
                 "silently default");
    }
  }

  return out;
}

bool op_within_effects(const model::OpRecord& record,
                       const TacticEffects& effects) {
  switch (record.kind) {
    case model::OpKind::SetProperty:
      return effects.writes.count(record.property) != 0;
    case model::OpKind::AddComponent:
    case model::OpKind::AddConnector:
    case model::OpKind::AddPort:
    case model::OpKind::AddRole:
      return effects.adds_element || effects.rewires;
    case model::OpKind::RemoveComponent:
    case model::OpKind::RemoveConnector:
    case model::OpKind::RemovePort:
    case model::OpKind::RemoveRole:
      return effects.removes_element || effects.rewires;
    case model::OpKind::Attach:
    case model::OpKind::Detach:
      return effects.rewires;
  }
  return false;
}

}  // namespace arcadia::acme::analysis
