#include "acme/script.hpp"

namespace arcadia::acme {

namespace {

template <typename T>
std::unique_ptr<T> node(const Token& at) {
  auto n = std::make_unique<T>();
  n->line = at.line;
  n->column = at.column;
  return n;
}

std::string parse_type_annotation(TokenStream& ts) {
  std::string type = ts.expect_identifier("as type annotation");
  if (type == "set" && ts.accept(TokenKind::LBrace)) {
    type = "set{" + ts.expect_identifier("inside set{...}") + "}";
    ts.expect(TokenKind::RBrace, "to close set{...}");
  }
  return type;
}

std::vector<Param> parse_params(TokenStream& ts) {
  std::vector<Param> params;
  ts.expect(TokenKind::LParen, "to open parameter list");
  if (!ts.at(TokenKind::RParen)) {
    for (;;) {
      Param p;
      p.name = ts.expect_identifier("as parameter name");
      if (ts.accept(TokenKind::Colon)) {
        p.type_annotation = parse_type_annotation(ts);
      }
      params.push_back(std::move(p));
      if (!ts.accept(TokenKind::Comma)) break;
    }
  }
  ts.expect(TokenKind::RParen, "to close parameter list");
  return params;
}

StmtPtr parse_statement(TokenStream& ts);

std::unique_ptr<BlockStmt> parse_block(TokenStream& ts) {
  const Token& open = ts.peek();
  ts.expect(TokenKind::LBrace, "to open block");
  auto block = node<BlockStmt>(open);
  while (!ts.at(TokenKind::RBrace)) {
    if (ts.done()) ts.fail("unterminated block");
    block->statements.push_back(parse_statement(ts));
  }
  ts.take();  // '}'
  return block;
}

/// A single statement or a braced block (for if/else arms).
StmtPtr parse_block_or_statement(TokenStream& ts) {
  if (ts.at(TokenKind::LBrace)) return parse_block(ts);
  return parse_statement(ts);
}

StmtPtr parse_statement(TokenStream& ts) {
  const Token& t = ts.peek();

  if (t.is_keyword("let")) {
    ts.take();
    auto let = node<LetStmt>(t);
    let->name = ts.expect_identifier("as let binding name");
    if (ts.accept(TokenKind::Colon)) {
      let->type_annotation = parse_type_annotation(ts);
    }
    ts.expect(TokenKind::Assign, "in let statement");
    let->value = parse_expression(ts);
    ts.expect(TokenKind::Semicolon, "after let statement");
    return let;
  }

  if (t.is_keyword("if")) {
    ts.take();
    auto ifs = node<IfStmt>(t);
    ts.expect(TokenKind::LParen, "after 'if'");
    ifs->condition = parse_expression(ts);
    ts.expect(TokenKind::RParen, "after if condition");
    ifs->then_branch = parse_block_or_statement(ts);
    if (ts.accept_keyword("else")) {
      ifs->else_branch = parse_block_or_statement(ts);
    }
    return ifs;
  }

  if (t.is_keyword("foreach")) {
    ts.take();
    auto fe = node<ForeachStmt>(t);
    fe->binder = ts.expect_identifier("as foreach binder");
    // Tolerate an optional type annotation on the binder.
    if (ts.accept(TokenKind::Colon)) parse_type_annotation(ts);
    ts.expect_keyword("in", "in foreach statement");
    fe->domain = parse_expression(ts);
    fe->body = parse_block(ts);
    return fe;
  }

  if (t.is_keyword("return")) {
    ts.take();
    auto ret = node<ReturnStmt>(t);
    if (!ts.at(TokenKind::Semicolon)) ret->value = parse_expression(ts);
    ts.expect(TokenKind::Semicolon, "after return");
    return ret;
  }

  if (t.is_keyword("commit")) {
    ts.take();
    ts.expect_keyword("repair", "after 'commit'");
    ts.expect(TokenKind::Semicolon, "after 'commit repair'");
    return node<CommitStmt>(t);
  }

  if (t.is_keyword("abort")) {
    ts.take();
    auto ab = node<AbortStmt>(t);
    ab->reason = ts.expect_identifier("as abort reason");
    ts.expect(TokenKind::Semicolon, "after abort");
    return ab;
  }

  auto es = node<ExprStmt>(t);
  es->expr = parse_expression(ts);
  ts.expect(TokenKind::Semicolon, "after expression statement");
  return es;
}

InvariantDecl parse_invariant(TokenStream& ts) {
  InvariantDecl inv;
  inv.line = ts.peek().line;
  inv.column = ts.peek().column;
  ts.expect_keyword("invariant", "");
  // Optional "name :" prefix — the bound violation variable.
  if (ts.at(TokenKind::Identifier) && ts.peek(1).is(TokenKind::Colon)) {
    inv.name = ts.take().text;
    ts.take();  // ':'
  }
  inv.condition = parse_expression(ts);
  if (ts.accept(TokenKind::BangArrow)) {
    inv.handler = ts.expect_identifier("as repair handler name");
    ts.expect(TokenKind::LParen, "after handler name");
    if (!ts.at(TokenKind::RParen)) {
      for (;;) {
        inv.args.push_back(ts.expect_identifier("as handler argument"));
        if (!ts.accept(TokenKind::Comma)) break;
      }
    }
    ts.expect(TokenKind::RParen, "to close handler arguments");
  }
  ts.expect(TokenKind::Semicolon, "after invariant");
  return inv;
}

}  // namespace

Script parse_script(const std::string& source) {
  TokenStream ts(tokenize(source));
  Script script;
  while (!ts.done()) {
    const Token& t = ts.peek();
    if (t.is_keyword("invariant")) {
      script.invariants.push_back(parse_invariant(ts));
      continue;
    }
    if (t.is_keyword("strategy")) {
      ts.take();
      StrategyDecl s;
      s.line = t.line;
      s.column = t.column;
      s.name = ts.expect_identifier("as strategy name");
      s.params = parse_params(ts);
      ts.expect(TokenKind::Assign, "before strategy body");
      s.body = parse_block(ts);
      script.strategies.push_back(std::move(s));
      continue;
    }
    if (t.is_keyword("tactic")) {
      ts.take();
      TacticDecl d;
      d.line = t.line;
      d.column = t.column;
      d.name = ts.expect_identifier("as tactic name");
      d.params = parse_params(ts);
      if (ts.accept(TokenKind::Colon)) {
        d.return_type = ts.expect_identifier("as tactic return type");
      }
      ts.expect(TokenKind::Assign, "before tactic body");
      d.body = parse_block(ts);
      script.tactics.push_back(std::move(d));
      continue;
    }
    ts.fail("expected 'invariant', 'strategy', or 'tactic'");
  }
  return script;
}

const char* figure5_script() {
  return R"script(
// Figure 5 of Cheng et al., HPDC 2002 — the latency repair strategy.
// Line 1-2: the constraint, and the strategy triggered when it fails.
invariant r : averageLatency <= maxLatency !-> fixLatency(r);

strategy fixLatency(badClient : ClientT) = {
  if (fixServerLoad(badClient)) {
    commit repair;
  } else if (fixBandwidth(badClient, roleOf(badClient))) {
    commit repair;
  } else {
    abort ModelError;
  }
}

// First tactic: a connected server group is overloaded -> grow it.
tactic fixServerLoad(client : ClientT) : boolean = {
  let loadedServerGroups : set{ServerGroupT} =
    select sgrp : ServerGroupT in self.Components |
      connected(sgrp, client) and sgrp.load > maxServerLoad;
  if (size(loadedServerGroups) == 0) {
    return false;
  }
  foreach sGrp in loadedServerGroups {
    sGrp.addServer();
  }
  return size(loadedServerGroups) > 0;
}

// Second tactic: high latency is due to communication delay -> move the
// client to a server group with better bandwidth.
tactic fixBandwidth(client : ClientT, role : ClientRoleT) : boolean = {
  if (role.bandwidth >= minBandwidth) {
    return false;
  }
  let oldSGrp : ServerGroupT =
    select one sGrp : ServerGroupT in self.Components |
      connected(client, sGrp);
  let goodSGrp : ServerGroupT = findGoodSGrp(client, minBandwidth);
  if (goodSGrp != nil) {
    client.move(goodSGrp);
    return true;
  } else {
    abort NoServerGroupFound;
  }
}

// The paper's "third repair (not shown)": release a server from a group
// that is underutilized, to keep the active server set minimal.
invariant u : utilization >= minUtilization !-> trimServers(u);

strategy trimServers(group : ServerGroupT) = {
  if (shrinkGroup(group)) {
    commit repair;
  } else {
    abort NothingToTrim;
  }
}

tactic shrinkGroup(group : ServerGroupT) : boolean = {
  if (group.utilization >= minUtilization) {
    return false;
  }
  if (group.replicationCount <= minReplicas) {
    return false;
  }
  group.removeServer();
  return true;
}
)script";
}

}  // namespace arcadia::acme
