// Gauges: the middle layer of the paper's monitoring infrastructure
// (Figure 4). A gauge consumes probe observations and interprets them as a
// higher-level architectural property ("the averageLatency of client
// User3"), periodically reporting on the gauge bus. Lifecycle (creation,
// deletion, relocation) is owned by the GaugeManager.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "events/bus.hpp"
#include "sim/simulator.hpp"
#include "util/ring_buffer.hpp"
#include "util/stats.hpp"
#include "util/symbol.hpp"

namespace arcadia::monitor {

/// Identity of a gauge: which model element and property it measures.
/// All names are interned eagerly at construction — specs are read
/// concurrently by the fleet's parallel shard sweep, so there must be no
/// lazy intern-on-first-use mutation behind a const accessor.
struct GaugeSpec {
  util::Symbol id;        ///< unique gauge id ("latency:User3")
  util::Symbol element;   ///< model element address ("User3",
                          ///  "Conn_User3.clientSide")
  util::Symbol property;  ///< property name ("averageLatency", "load", ...)
  sim::NodeId host_node = sim::kNoNode;  ///< machine the gauge runs on

  /// Interned `element`, used for grouping/redeploy lookups.
  util::Symbol element_symbol() const { return element; }
};

/// Base class. Subclasses define which probe notifications feed the gauge
/// and how observations aggregate into the reported value.
class Gauge {
 public:
  Gauge(sim::Simulator& sim, GaugeSpec spec)
      : sim_(sim), spec_(std::move(spec)) {}
  virtual ~Gauge() = default;

  const GaugeSpec& spec() const { return spec_; }

  /// The probe-bus filter selecting this gauge's input observations.
  virtual events::Filter probe_filter() const = 0;
  /// Ingest one observation.
  virtual void consume(const events::Notification& n) = 0;
  /// Current interpreted value; std::nullopt when there is no data yet.
  virtual std::optional<double> read() = 0;
  /// Drop accumulated state (called when a gauge is re-deployed cold).
  virtual void reset() = 0;

 protected:
  sim::Simulator& sim_;
  GaugeSpec spec_;
};

/// Mean over a sliding time window, with bounded staleness: when no samples
/// arrived for `max_staleness`, read() reports the last known value for a
/// while, then goes empty (a silent probe should not freeze the model
/// forever).
class SlidingWindowGauge : public Gauge {
 public:
  SlidingWindowGauge(sim::Simulator& sim, GaugeSpec spec,
                     events::Filter filter, util::Symbol value_attr,
                     SimTime window, SimTime max_staleness);

  events::Filter probe_filter() const override { return filter_; }
  void consume(const events::Notification& n) override;
  std::optional<double> read() override;
  void reset() override;

  std::size_t samples_in_window() const { return samples_.size(); }

 private:
  void evict();
  events::Filter filter_;
  util::Symbol value_attr_;
  SimTime window_;
  SimTime max_staleness_;
  /// Ring, not deque: the window slides for the whole run, and the ring
  /// stops allocating once it reaches the high-water sample count.
  util::RingBuffer<std::pair<SimTime, double>> samples_;
  std::optional<double> last_value_;
  SimTime last_sample_time_;
};

/// Exponentially-weighted moving average of a probe attribute.
class EwmaGauge : public Gauge {
 public:
  EwmaGauge(sim::Simulator& sim, GaugeSpec spec, events::Filter filter,
            util::Symbol value_attr, double alpha);

  events::Filter probe_filter() const override { return filter_; }
  void consume(const events::Notification& n) override;
  std::optional<double> read() override;
  void reset() override;

 private:
  events::Filter filter_;
  util::Symbol value_attr_;
  Ewma ewma_;
};

/// Reports the most recent observation unchanged (bandwidth snapshots).
class LatestValueGauge : public Gauge {
 public:
  LatestValueGauge(sim::Simulator& sim, GaugeSpec spec, events::Filter filter,
                   util::Symbol value_attr);

  events::Filter probe_filter() const override { return filter_; }
  void consume(const events::Notification& n) override;
  std::optional<double> read() override;
  void reset() override;

 private:
  events::Filter filter_;
  util::Symbol value_attr_;
  std::optional<double> latest_;
};

// ---- Factories for the paper's three gauge kinds (Section 3.1: "we must
// deploy a gauge that captures the averageLatency property of each client
// ... gauges that measure the bandwidth between the client and the server
// group and also to measure the load on the server group").

std::unique_ptr<Gauge> make_latency_gauge(sim::Simulator& sim,
                                          const std::string& client,
                                          sim::NodeId host, SimTime window);

std::unique_ptr<Gauge> make_load_gauge(sim::Simulator& sim,
                                       const std::string& group,
                                       sim::NodeId host, SimTime window);

/// `role_element` is the model element carrying the bandwidth property (the
/// client's connector role); the probe stream is keyed by client name.
std::unique_ptr<Gauge> make_bandwidth_gauge(sim::Simulator& sim,
                                            const std::string& client,
                                            const std::string& role_element,
                                            sim::NodeId host);

std::unique_ptr<Gauge> make_utilization_gauge(sim::Simulator& sim,
                                              const std::string& group,
                                              sim::NodeId host, double alpha);

}  // namespace arcadia::monitor
