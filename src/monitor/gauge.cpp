#include "monitor/gauge.hpp"

#include "monitor/topics.hpp"

namespace arcadia::monitor {

SlidingWindowGauge::SlidingWindowGauge(sim::Simulator& sim, GaugeSpec spec,
                                       events::Filter filter,
                                       util::Symbol value_attr, SimTime window,
                                       SimTime max_staleness)
    : Gauge(sim, std::move(spec)),
      filter_(std::move(filter)),
      value_attr_(value_attr),
      window_(window),
      max_staleness_(max_staleness) {}

void SlidingWindowGauge::consume(const events::Notification& n) {
  const events::Value* v = n.get_if(value_attr_);
  if (!v || !v->is_numeric()) return;
  samples_.push_back({sim_.now(), v->as_double()});
  last_sample_time_ = sim_.now();
  // Track the newest observation so read() can hold a value through short
  // probe silences even if it never ran while the window was populated.
  last_value_ = v->as_double();
  evict();
}

void SlidingWindowGauge::evict() {
  const SimTime cutoff = sim_.now() - window_;
  while (!samples_.empty() && samples_.front().first < cutoff) {
    samples_.pop_front();
  }
}

std::optional<double> SlidingWindowGauge::read() {
  evict();
  if (!samples_.empty()) {
    double sum = 0.0;
    for (std::size_t i = 0; i < samples_.size(); ++i) sum += samples_[i].second;
    last_value_ = sum / static_cast<double>(samples_.size());
    return last_value_;
  }
  // No samples in the window: hold the last value briefly.
  if (last_value_ && sim_.now() - last_sample_time_ <= max_staleness_) {
    return last_value_;
  }
  return std::nullopt;
}

void SlidingWindowGauge::reset() {
  samples_.clear();
  last_value_.reset();
}

EwmaGauge::EwmaGauge(sim::Simulator& sim, GaugeSpec spec, events::Filter filter,
                     util::Symbol value_attr, double alpha)
    : Gauge(sim, std::move(spec)),
      filter_(std::move(filter)),
      value_attr_(value_attr),
      ewma_(alpha) {}

void EwmaGauge::consume(const events::Notification& n) {
  const events::Value* v = n.get_if(value_attr_);
  if (!v || !v->is_numeric()) return;
  ewma_.add(v->as_double());
}

std::optional<double> EwmaGauge::read() {
  if (!ewma_.initialized()) return std::nullopt;
  return ewma_.value();
}

void EwmaGauge::reset() { ewma_.reset(); }

LatestValueGauge::LatestValueGauge(sim::Simulator& sim, GaugeSpec spec,
                                   events::Filter filter,
                                   util::Symbol value_attr)
    : Gauge(sim, std::move(spec)),
      filter_(std::move(filter)),
      value_attr_(value_attr) {}

void LatestValueGauge::consume(const events::Notification& n) {
  const events::Value* v = n.get_if(value_attr_);
  if (!v || !v->is_numeric()) return;
  latest_ = v->as_double();
}

std::optional<double> LatestValueGauge::read() { return latest_; }

void LatestValueGauge::reset() { latest_.reset(); }

std::unique_ptr<Gauge> make_latency_gauge(sim::Simulator& sim,
                                          const std::string& client,
                                          sim::NodeId host, SimTime window) {
  GaugeSpec spec;
  spec.id = util::Symbol::intern("latency:" + client);
  spec.element = util::Symbol::intern(client);
  spec.property = util::Symbol::intern("averageLatency");
  spec.host_node = host;
  auto filter =
      events::Filter::topic(topics::kProbeLatencySym)
          .where(topics::kAttrClientSym, events::Op::Eq,
                 events::Value(util::Symbol::intern(client)));
  return std::make_unique<SlidingWindowGauge>(
      sim, std::move(spec), std::move(filter), topics::kAttrValueSym, window,
      window * 2.0);
}

std::unique_ptr<Gauge> make_load_gauge(sim::Simulator& sim,
                                       const std::string& group,
                                       sim::NodeId host, SimTime window) {
  GaugeSpec spec;
  spec.id = util::Symbol::intern("load:" + group);
  spec.element = util::Symbol::intern(group);
  spec.property = util::Symbol::intern("load");
  spec.host_node = host;
  auto filter = events::Filter::topic(topics::kProbeQueueSym)
                    .where(topics::kAttrGroupSym, events::Op::Eq,
                           events::Value(util::Symbol::intern(group)));
  return std::make_unique<SlidingWindowGauge>(
      sim, std::move(spec), std::move(filter), topics::kAttrValueSym, window,
      window * 2.0);
}

std::unique_ptr<Gauge> make_bandwidth_gauge(sim::Simulator& sim,
                                            const std::string& client,
                                            const std::string& role_element,
                                            sim::NodeId host) {
  GaugeSpec spec;
  spec.id = util::Symbol::intern("bandwidth:" + client);
  spec.element = util::Symbol::intern(role_element);
  spec.property = util::Symbol::intern("bandwidth");
  spec.host_node = host;
  auto filter =
      events::Filter::topic(topics::kProbeBandwidthSym)
          .where(topics::kAttrClientSym, events::Op::Eq,
                 events::Value(util::Symbol::intern(client)));
  return std::make_unique<LatestValueGauge>(sim, std::move(spec),
                                            std::move(filter),
                                            topics::kAttrValueSym);
}

std::unique_ptr<Gauge> make_utilization_gauge(sim::Simulator& sim,
                                              const std::string& group,
                                              sim::NodeId host, double alpha) {
  GaugeSpec spec;
  spec.id = util::Symbol::intern("utilization:" + group);
  spec.element = util::Symbol::intern(group);
  spec.property = util::Symbol::intern("utilization");
  spec.host_node = host;
  auto filter = events::Filter::topic(topics::kProbeUtilizationSym)
                    .where(topics::kAttrGroupSym, events::Op::Eq,
                           events::Value(util::Symbol::intern(group)));
  return std::make_unique<EwmaGauge>(sim, std::move(spec), std::move(filter),
                                     topics::kAttrValueSym, alpha);
}

}  // namespace arcadia::monitor
