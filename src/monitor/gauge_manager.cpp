#include "monitor/gauge_manager.hpp"

#include <algorithm>

#include "fault/fault_plane.hpp"
#include "monitor/topics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace arcadia::monitor {

GaugeManager::GaugeManager(sim::Simulator& sim, events::EventBus& probe_bus,
                           events::EventBus& gauge_bus,
                           GaugeManagerConfig config)
    : sim_(sim), probe_bus_(probe_bus), gauge_bus_(gauge_bus), config_(config) {
  if (config_.watchdog_period > SimTime::zero()) {
    watchdog_ = std::make_unique<sim::PeriodicTask>(
        sim_, sim_.now() + config_.watchdog_period, config_.watchdog_period,
        [this]() {
          scan_liveness();
          return true;
        });
  }
}

GaugeManager::~GaugeManager() {
  for (auto& entry : gauges_) take_offline(entry.value);
}

std::string GaugeManager::deploy(std::unique_ptr<Gauge> gauge,
                                 std::function<void()> on_live) {
  serial_.check();
  const util::Symbol id = gauge->spec().id;
  if (gauges_.contains(id)) {
    throw Error("gauge already deployed: " + id.str());
  }
  Managed m;
  m.gauge = std::move(gauge);
  gauges_.insert_or_assign(id, std::move(m));
  sim_.schedule_in(config_.create_cost, [this, id, on_live] {
    go_live(id, on_live);
  });
  return id.str();
}

void GaugeManager::bring_online(Managed& m) {
  Gauge* g = m.gauge.get();
  m.probe_sub = probe_bus_.subscribe(
      g->probe_filter(), [g](const events::Notification& n) { g->consume(n); },
      g->spec().host_node);
  m.reporter = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + config_.report_period, config_.report_period,
      [this, g]() {
        Managed* mm = gauges_.find(g->spec().id);
        if (!mm || !mm->live) return false;
        report(*mm);
        return true;
      });
  m.live = true;
  // Deployment counts as a heartbeat: a gauge is not stale until it has
  // had stale_after of silence from this moment.
  m.last_report = sim_.now();
}

void GaugeManager::go_live(util::Symbol id, std::function<void()> on_live) {
  Managed* m = gauges_.find(id);
  if (!m) return;  // destroyed while being created
  bring_online(*m);
  ++stats_.created;
  publish_lifecycle(id, m->gauge->spec().element, topics::kPhaseCreated);
  if (on_live) on_live();
}

void GaugeManager::report(Managed& m) {
  std::optional<double> value = m.gauge->read();
  if (!value) return;
  const GaugeSpec& spec = m.gauge->spec();
  // Channel-disconnect injection: a down channel silently eats the report
  // at the source, which is exactly the staleness the watchdog exists to
  // catch. last_report is *not* advanced.
  if (plane_ && plane_->channel_down(spec.id)) {
    ++stats_.reports_suppressed;
    return;
  }
  m.last_report = sim_.now();
  if (m.suspect) {
    m.suspect = false;
    ++stats_.suspects_cleared;
    publish_lifecycle(spec.id, spec.element, topics::kPhaseCleared);
  }
  // Symbols and a double end to end: the busiest notification in the
  // system carries no owned strings and allocates nothing to build.
  events::Notification n(topics::kGaugeReportSym);
  n.set(topics::kAttrGaugeIdSym, spec.id)
      .set(topics::kAttrElementSym, spec.element)
      .set(topics::kAttrPropertySym, spec.property)
      .set(topics::kAttrValueSym, *value);
  n.source_node = spec.host_node;
  n.wire_size = DataSize::bytes(512);
  ++stats_.reports;
  gauge_bus_.publish(std::move(n));
}

void GaugeManager::take_offline(Managed& m) {
  if (m.probe_sub != 0) {
    probe_bus_.unsubscribe(m.probe_sub);
    m.probe_sub = 0;
  }
  m.reporter.reset();
  m.live = false;
}

void GaugeManager::destroy(const std::string& gauge_id,
                           std::function<void()> on_done) {
  destroy(util::Symbol::intern(gauge_id), std::move(on_done));
}

void GaugeManager::destroy(util::Symbol gauge_id,
                           std::function<void()> on_done) {
  serial_.check();
  Managed* m = gauges_.find(gauge_id);
  if (!m) throw Error("destroy: unknown gauge " + gauge_id.str());
  const util::Symbol element = m->gauge->spec().element;
  // A suspect gauge leaving the fleet must clear its mark first, or the
  // element's suspect refcount (and the checker's verdict hold) would
  // leak past the gauge's lifetime.
  if (m->suspect) {
    m->suspect = false;
    ++stats_.suspects_cleared;
    publish_lifecycle(gauge_id, element, topics::kPhaseCleared);
  }
  take_offline(*m);
  gauges_.erase(gauge_id);
  ++stats_.destroyed;
  publish_lifecycle(gauge_id, element, topics::kPhaseDeleted);
  sim_.schedule_in(config_.destroy_cost, [on_done] {
    if (on_done) on_done();
  });
}

void GaugeManager::publish_lifecycle(util::Symbol id, util::Symbol element,
                                     util::Symbol phase) {
  events::Notification n(topics::kGaugeLifecycleSym);
  n.set(topics::kAttrGaugeIdSym, id)
      .set(topics::kAttrElementSym, element)
      .set(topics::kAttrPhaseSym, phase);
  n.wire_size = DataSize::bytes(256);
  gauge_bus_.publish(std::move(n));
}

void GaugeManager::scan_liveness() {
  for (auto& entry : gauges_) {
    Managed& m = entry.value;
    if (!m.live || m.suspect) continue;
    if (sim_.now() - m.last_report > config_.stale_after) {
      m.suspect = true;
      ++stats_.suspects_marked;
      publish_lifecycle(entry.key, m.gauge->spec().element,
                        topics::kPhaseSuspect);
    }
  }
}

void GaugeManager::crash(SimTime duration) {
  serial_.check();
  if (!plane_) return;
  const SimTime until = sim_.now() + duration;
  for (auto& entry : gauges_) {
    plane_->force_channel_down(entry.key, until);
  }
  plane_->count_tenant_crash();
  ARC_WARN << "tenant crash injected: " << gauges_.size()
           << " gauge channels dark for " << duration.as_seconds() << "s";
}

std::vector<util::Symbol> GaugeManager::gauge_ids_for(
    util::Symbol element) const {
  std::vector<util::Symbol> out;
  for (const auto& entry : gauges_) {
    if (entry.value.gauge->spec().element_symbol() == element) {
      out.push_back(entry.key);
    }
  }
  return out;
}

std::vector<std::string> GaugeManager::gauges_for(
    const std::string& element) const {
  std::vector<std::string> out;
  for (util::Symbol id : gauge_ids_for(util::Symbol::intern(element))) {
    out.push_back(id.str());
  }
  return out;
}

std::vector<std::string> GaugeManager::all_elements() const {
  std::vector<std::string> out;
  for (const auto& entry : gauges_) {
    const std::string& el = entry.value.gauge->spec().element.str();
    if (std::find(out.begin(), out.end(), el) == out.end()) out.push_back(el);
  }
  return out;
}

std::vector<GaugeSpec> GaugeManager::specs() const {
  std::vector<GaugeSpec> out;
  out.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    out.push_back(entry.value.gauge->spec());
  }
  return out;
}

std::vector<GaugeManager::ChannelState> GaugeManager::snapshot_state() const {
  std::vector<ChannelState> out;
  out.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    ChannelState state;
    state.id = entry.key.str();
    state.live = entry.value.live;
    state.suspect = entry.value.suspect;
    state.last_report = entry.value.last_report;
    out.push_back(std::move(state));
  }
  return out;
}

bool GaugeManager::is_live(const std::string& gauge_id) const {
  return is_live(util::Symbol::intern(gauge_id));
}

bool GaugeManager::is_live(util::Symbol gauge_id) const {
  const Managed* m = gauges_.find(gauge_id);
  return m && m->live;
}

bool GaugeManager::is_suspect(const std::string& gauge_id) const {
  return is_suspect(util::Symbol::intern(gauge_id));
}

bool GaugeManager::is_suspect(util::Symbol gauge_id) const {
  const Managed* m = gauges_.find(gauge_id);
  return m && m->suspect;
}

std::size_t GaugeManager::suspect_count() const {
  std::size_t n = 0;
  for (const auto& entry : gauges_) {
    if (entry.value.suspect) ++n;
  }
  return n;
}

SimTime GaugeManager::redeploy_cost(const std::string& element) const {
  const std::size_t n =
      gauge_ids_for(util::Symbol::intern(element)).size();
  const SimTime per = config_.caching
                          ? config_.relocate_cost
                          : config_.destroy_cost + config_.create_cost;
  return per * static_cast<double>(n);
}

void GaugeManager::redeploy_elements(const std::vector<std::string>& elements,
                                     std::function<void()> on_done) {
  serial_.check();
  ++stats_.redeploy_batches;
  if (elements.empty()) {
    sim_.schedule_in(SimTime::zero(), [on_done] {
      if (on_done) on_done();
    });
    return;
  }
  // Per-element chains launch now and run concurrently; the shared counter
  // fires the completion when the slowest element finishes.
  auto remaining = std::make_shared<std::size_t>(elements.size());
  for (const std::string& element : elements) {
    redeploy_element(element, [remaining, on_done] {
      if (--*remaining == 0 && on_done) on_done();
    });
  }
}

void GaugeManager::redeploy_element(const std::string& element,
                                    std::function<void()> on_done) {
  serial_.check();
  std::vector<util::Symbol> ids =
      gauge_ids_for(util::Symbol::intern(element));
  ++stats_.redeploys;
  if (ids.empty()) {
    sim_.schedule_in(SimTime::zero(), [on_done] {
      if (on_done) on_done();
    });
    return;
  }
  const SimTime started = sim_.now();
  // All of the element's gauges stop reporting now; they come back one by
  // one as the (sequential) lifecycle communication completes.
  SimTime cursor = SimTime::zero();
  for (util::Symbol id : ids) {
    // A lifecycle subscriber may destroy() gauges synchronously from the
    // publish below; re-resolve and skip ids that vanished mid-loop.
    Managed* found = gauges_.find(id);
    if (!found) continue;
    Managed& m = *found;
    take_offline(m);
    if (config_.caching) {
      ++stats_.relocated;
      cursor += config_.relocate_cost;
      // Relocation keeps accumulated state (the cache is the point).
    } else {
      ++stats_.destroyed;
      ++stats_.created;
      m.gauge->reset();
      cursor += config_.destroy_cost + config_.create_cost;
    }
    publish_lifecycle(id, m.gauge->spec().element,
                      config_.caching ? topics::kPhaseRelocating
                                      : topics::kPhaseDeleted);
    const bool last = (id == ids.back());
    sim_.schedule_in(cursor, [this, id, last, started, on_done] {
      Managed* mm = gauges_.find(id);
      if (mm) {
        // Bring the gauge back online.
        bring_online(*mm);
        publish_lifecycle(id, mm->gauge->spec().element,
                          topics::kPhaseCreated);
      }
      // A destroyed-mid-redeploy gauge (lifecycle subscriber tore it down)
      // has nothing to bring back — but the completion contract still
      // holds: on_done fires exactly once per redeploy, or a plan step
      // (and the repair engine behind it) would wait forever.
      if (last) {
        stats_.redeploy_time_total_s += (sim_.now() - started).as_seconds();
        if (on_done) on_done();
      }
    });
  }
}

}  // namespace arcadia::monitor
