#include "monitor/gauge_manager.hpp"

#include "monitor/topics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace arcadia::monitor {

GaugeManager::GaugeManager(sim::Simulator& sim, events::EventBus& probe_bus,
                           events::EventBus& gauge_bus,
                           GaugeManagerConfig config)
    : sim_(sim), probe_bus_(probe_bus), gauge_bus_(gauge_bus), config_(config) {}

GaugeManager::~GaugeManager() {
  for (auto& [id, m] : gauges_) take_offline(m);
}

std::string GaugeManager::deploy(std::unique_ptr<Gauge> gauge,
                                 std::function<void()> on_live) {
  const std::string id = gauge->spec().id;
  if (gauges_.count(id)) throw Error("gauge already deployed: " + id);
  Managed m;
  m.gauge = std::move(gauge);
  gauges_.emplace(id, std::move(m));
  sim_.schedule_in(config_.create_cost, [this, id, on_live] {
    go_live(id, on_live);
  });
  return id;
}

void GaugeManager::go_live(const std::string& id,
                           std::function<void()> on_live) {
  auto it = gauges_.find(id);
  if (it == gauges_.end()) return;  // destroyed while being created
  Managed& m = it->second;
  Gauge* g = m.gauge.get();
  m.probe_sub = probe_bus_.subscribe(
      g->probe_filter(), [g](const events::Notification& n) { g->consume(n); },
      g->spec().host_node);
  m.reporter = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + config_.report_period, config_.report_period,
      [this, g]() {
        auto it2 = gauges_.find(g->spec().id);
        if (it2 == gauges_.end() || !it2->second.live) return false;
        report(it2->second);
        return true;
      });
  m.live = true;
  ++stats_.created;
  publish_lifecycle(id, "created");
  if (on_live) on_live();
}

void GaugeManager::report(Managed& m) {
  std::optional<double> value = m.gauge->read();
  if (!value) return;
  const GaugeSpec& spec = m.gauge->spec();
  events::Notification n(topics::kGaugeReport);
  n.set(topics::kAttrGaugeId, spec.id)
      .set(topics::kAttrElement, spec.element)
      .set(topics::kAttrProperty, spec.property)
      .set(topics::kAttrValue, *value);
  n.source_node = spec.host_node;
  n.wire_size = DataSize::bytes(512);
  ++stats_.reports;
  gauge_bus_.publish(std::move(n));
}

void GaugeManager::take_offline(Managed& m) {
  if (m.probe_sub != 0) {
    probe_bus_.unsubscribe(m.probe_sub);
    m.probe_sub = 0;
  }
  m.reporter.reset();
  m.live = false;
}

void GaugeManager::destroy(const std::string& gauge_id,
                           std::function<void()> on_done) {
  auto it = gauges_.find(gauge_id);
  if (it == gauges_.end()) throw Error("destroy: unknown gauge " + gauge_id);
  take_offline(it->second);
  gauges_.erase(it);
  ++stats_.destroyed;
  publish_lifecycle(gauge_id, "deleted");
  sim_.schedule_in(config_.destroy_cost, [on_done] {
    if (on_done) on_done();
  });
}

void GaugeManager::publish_lifecycle(const std::string& id,
                                     const std::string& phase) {
  events::Notification n(topics::kGaugeLifecycle);
  n.set(topics::kAttrGaugeId, id).set(topics::kAttrPhase, phase);
  n.wire_size = DataSize::bytes(256);
  gauge_bus_.publish(std::move(n));
}

std::vector<std::string> GaugeManager::gauges_for(
    const std::string& element) const {
  const util::Symbol key = util::Symbol::intern(element);
  std::vector<std::string> out;
  for (const auto& [id, m] : gauges_) {
    if (m.gauge->spec().element_symbol() == key) out.push_back(id);
  }
  return out;
}

std::vector<std::string> GaugeManager::all_elements() const {
  std::vector<std::string> out;
  for (const auto& [id, m] : gauges_) {
    const std::string& el = m.gauge->spec().element;
    if (std::find(out.begin(), out.end(), el) == out.end()) out.push_back(el);
  }
  return out;
}

bool GaugeManager::is_live(const std::string& gauge_id) const {
  auto it = gauges_.find(gauge_id);
  return it != gauges_.end() && it->second.live;
}

SimTime GaugeManager::redeploy_cost(const std::string& element) const {
  const std::size_t n = gauges_for(element).size();
  const SimTime per = config_.caching
                          ? config_.relocate_cost
                          : config_.destroy_cost + config_.create_cost;
  return per * static_cast<double>(n);
}

void GaugeManager::redeploy_element(const std::string& element,
                                    std::function<void()> on_done) {
  std::vector<std::string> ids = gauges_for(element);
  ++stats_.redeploys;
  if (ids.empty()) {
    sim_.schedule_in(SimTime::zero(), [on_done] {
      if (on_done) on_done();
    });
    return;
  }
  const SimTime started = sim_.now();
  // All of the element's gauges stop reporting now; they come back one by
  // one as the (sequential) lifecycle communication completes.
  SimTime cursor = SimTime::zero();
  for (const std::string& id : ids) {
    Managed& m = gauges_.at(id);
    take_offline(m);
    if (config_.caching) {
      ++stats_.relocated;
      cursor += config_.relocate_cost;
      // Relocation keeps accumulated state (the cache is the point).
    } else {
      ++stats_.destroyed;
      ++stats_.created;
      m.gauge->reset();
      cursor += config_.destroy_cost + config_.create_cost;
    }
    publish_lifecycle(id, config_.caching ? "relocating" : "deleted");
    const bool last = (id == ids.back());
    sim_.schedule_in(cursor, [this, id, last, started, on_done] {
      auto it = gauges_.find(id);
      if (it == gauges_.end()) return;
      // Bring the gauge back online.
      Managed& mm = it->second;
      Gauge* g = mm.gauge.get();
      mm.probe_sub = probe_bus_.subscribe(
          g->probe_filter(),
          [g](const events::Notification& n) { g->consume(n); },
          g->spec().host_node);
      mm.reporter = std::make_unique<sim::PeriodicTask>(
          sim_, sim_.now() + config_.report_period, config_.report_period,
          [this, g]() {
            auto it2 = gauges_.find(g->spec().id);
            if (it2 == gauges_.end() || !it2->second.live) return false;
            report(it2->second);
            return true;
          });
      mm.live = true;
      publish_lifecycle(id, "created");
      if (last) {
        stats_.redeploy_time_total_s += (sim_.now() - started).as_seconds();
        if (on_done) on_done();
      }
    });
  }
}

}  // namespace arcadia::monitor
