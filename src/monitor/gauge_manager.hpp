// Gauge lifecycle per the paper's gauge protocol: creation, reporting,
// deletion — and the cost of doing so over a wide-area bus. Section 5.3:
// "The time that it takes to effect a repair averages 30 seconds. Most of
// this time is spent in communicating to create and delete gauges.
// Improving this time by caching gauges or relocating them (rather than
// destroying and creating new ones) should see our repair speed improve
// dramatically." The `caching` flag switches between those two worlds and
// is the axis of the bench_repair_time ablation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "events/bus.hpp"
#include "monitor/gauge.hpp"
#include "sim/simulator.hpp"
#include "util/annotations.hpp"
#include "util/symbol.hpp"

namespace arcadia::fault {
class FaultPlane;
}

namespace arcadia::monitor {

struct GaugeManagerConfig {
  SimTime report_period = SimTime::seconds(5);
  /// Communication cost to create a gauge from scratch.
  SimTime create_cost = SimTime::seconds(12);
  /// Communication cost to delete a gauge.
  SimTime destroy_cost = SimTime::seconds(3);
  /// Cost to relocate/retarget a cached gauge (caching mode).
  SimTime relocate_cost = SimTime::seconds(1.5);
  /// Cached-gauge mode: redeployments relocate instead of destroy+create.
  bool caching = false;
  /// Gauge-liveness watchdog scan period; zero disables the watchdog.
  SimTime watchdog_period = SimTime::zero();
  /// Silence threshold: a live gauge that has not reported for this long is
  /// marked suspect ("suspect" lifecycle event); the next report that gets
  /// through clears it ("cleared").
  SimTime stale_after = SimTime::seconds(15);
};

struct GaugeManagerStats {
  std::uint64_t created = 0;
  std::uint64_t destroyed = 0;
  std::uint64_t relocated = 0;
  std::uint64_t reports = 0;
  std::uint64_t reports_suppressed = 0;  ///< channel down: dropped at source
  std::uint64_t suspects_marked = 0;     ///< watchdog staleness trips
  std::uint64_t suspects_cleared = 0;    ///< reports that cleared a suspect
  double redeploy_time_total_s = 0.0;
  std::uint64_t redeploys = 0;
  std::uint64_t redeploy_batches = 0;  ///< redeploy_elements() calls
};

/// Owns gauges; wires them to the probe bus; reports their readings on the
/// gauge bus; models the (dominant) communication costs of lifecycle
/// operations. Gauges are keyed by their interned id (util::SymbolMap, the
/// PR 2 container convention): the periodic report path — the busiest
/// consumer — resolves a gauge with an integer probe instead of a string
/// tree walk, and a report itself carries only symbols and a double, so
/// steady-state reporting allocates nothing.
class GaugeManager {
 public:
  GaugeManager(sim::Simulator& sim, events::EventBus& probe_bus,
               events::EventBus& gauge_bus, GaugeManagerConfig config);
  ~GaugeManager();

  GaugeManager(const GaugeManager&) = delete;
  GaugeManager& operator=(const GaugeManager&) = delete;

  /// Deploy a gauge: after the creation cost it subscribes to the probe
  /// bus and starts periodic reports. `on_live` fires when it is reporting.
  std::string deploy(std::unique_ptr<Gauge> gauge,
                     std::function<void()> on_live = {});

  /// Tear a gauge down (costs destroy_cost before `on_done`).
  void destroy(const std::string& gauge_id, std::function<void()> on_done = {});
  void destroy(util::Symbol gauge_id, std::function<void()> on_done = {});

  /// Re-deploy every gauge attached to `element` — the step a repair incurs
  /// after reconfiguring an element. Costs are sequential over the
  /// element's gauges (they share the element's command channel), cold mode
  /// destroy+create per gauge, caching mode one relocation per gauge.
  /// `on_done` fires when all of the element's gauges report again.
  void redeploy_element(const std::string& element,
                        std::function<void()> on_done = {});

  /// Batched re-deploy: one reconfigure covering several elements at once
  /// (the repair planner's gauge step). Elements use independent command
  /// channels, so their per-element sequential chains run concurrently and
  /// the batch costs the slowest element rather than the sum — the win
  /// Section 5.3 predicted for smarter gauge lifecycle handling. `on_done`
  /// fires when every element's gauges report again.
  void redeploy_elements(const std::vector<std::string>& elements,
                         std::function<void()> on_done = {});

  bool is_live(const std::string& gauge_id) const;
  bool is_live(util::Symbol gauge_id) const;
  bool is_suspect(const std::string& gauge_id) const;
  bool is_suspect(util::Symbol gauge_id) const;
  /// Gauges currently marked suspect by the watchdog.
  std::size_t suspect_count() const;

  /// Wire the fault plane: reports consult it for channel-disconnect
  /// windows (suppressed at source). Null disables injection.
  void set_fault_plane(fault::FaultPlane* plane) { plane_ = plane; }

  /// Fleet fault seam: every gauge channel of this manager goes dark for
  /// `duration` (a tenant crash). Needs a fault plane; the watchdog then
  /// marks the starved gauges suspect until the restart's reports clear
  /// them.
  void crash(SimTime duration);
  std::vector<std::string> gauges_for(const std::string& element) const;
  /// Distinct element names that have at least one gauge.
  std::vector<std::string> all_elements() const;
  /// Specs of every managed gauge, in deterministic (id-sorted) order —
  /// the element/property mappings arcverify checks constraints against.
  std::vector<GaugeSpec> specs() const;
  std::size_t gauge_count() const { return gauges_.size(); }
  const GaugeManagerStats& stats() const { return stats_; }
  const GaugeManagerConfig& config() const { return config_; }

  /// The modeled wall-clock cost of redeploying one element's gauges, given
  /// the current mode — used by planning/benches, not by execution.
  SimTime redeploy_cost(const std::string& element) const;

  /// One gauge channel's durable monitoring state (durability snapshots).
  struct ChannelState {
    std::string id;
    bool live = false;
    bool suspect = false;
    SimTime last_report;
  };
  /// Every channel's liveness/watchdog state, in deterministic (id-sorted)
  /// order — what the durability plane captures in a snapshot.
  std::vector<ChannelState> snapshot_state() const;

 private:
  struct Managed {
    std::unique_ptr<Gauge> gauge;
    events::SubscriptionId probe_sub = 0;
    std::unique_ptr<sim::PeriodicTask> reporter;
    bool live = false;
    bool suspect = false;
    SimTime last_report;  ///< watchdog heartbeat (deployment counts)
  };

  void go_live(util::Symbol id, std::function<void()> on_live);
  void bring_online(Managed& m);
  void take_offline(Managed& m);
  void publish_lifecycle(util::Symbol id, util::Symbol element,
                         util::Symbol phase);
  void report(Managed& m);
  void scan_liveness();
  std::vector<util::Symbol> gauge_ids_for(util::Symbol element) const;

  sim::Simulator& sim_;
  events::EventBus& probe_bus_;
  events::EventBus& gauge_bus_;
  GaugeManagerConfig config_;
  /// Interned gauge id -> managed gauge; iteration is name-sorted, matching
  /// the std::map<std::string, ...> order this container replaced.
  util::SymbolMap<Managed> gauges_;
  GaugeManagerStats stats_;
  fault::FaultPlane* plane_ = nullptr;
  std::unique_ptr<sim::PeriodicTask> watchdog_;
  /// Concurrency capability: not a mutex — every mutating call (deploy,
  /// destroy, redeploy*) must come from the simulation thread; the fleet's
  /// parallel sweep only ever *reads* through const accessors. Debug builds
  /// assert the discipline.
  util::SerialDomain serial_;
};

}  // namespace arcadia::monitor
