// Well-known bus topics and attribute names for the monitoring stack
// (Figure 4): probes publish observations on the probe bus; gauges publish
// interpreted model properties on the gauge reporting bus; the gauge
// manager publishes lifecycle messages per the gauge protocol.
//
// Each name exists twice: the raw string (stable external spelling, used
// in docs/logs and by call sites that still build filters from strings)
// and a pre-interned util::Symbol (the hot-path identity — publishers and
// consumers route on these without ever re-hashing the text).
#pragma once

#include "util/symbol.hpp"

namespace arcadia::monitor::topics {

// Probe bus.
inline constexpr const char* kProbeLatency = "probe.latency";
inline constexpr const char* kProbeQueue = "probe.queue";
inline constexpr const char* kProbeBandwidth = "probe.bandwidth";
inline constexpr const char* kProbeUtilization = "probe.utilization";
inline constexpr const char* kProbeMethodCall = "probe.method_call";

// Gauge reporting bus.
inline constexpr const char* kGaugeReport = "gauge.report";
inline constexpr const char* kGaugeLifecycle = "gauge.lifecycle";

// Repair-plan lifecycle (published by the repair engine when a bus is
// wired; consumed by fleet managers and tools observing repairs in
// flight).
inline constexpr const char* kRepairPlan = "repair.plan";

// Per-tenant health transitions (published by the fleet manager's health
// state machine: healthy -> degraded -> quarantined -> recovering).
inline constexpr const char* kFleetHealth = "fleet.health";

// Common attribute names.
inline constexpr const char* kAttrElement = "element";    // model element
inline constexpr const char* kAttrProperty = "property";  // model property
inline constexpr const char* kAttrValue = "value";
inline constexpr const char* kAttrGaugeId = "gauge";
inline constexpr const char* kAttrClient = "client";
inline constexpr const char* kAttrGroup = "group";
inline constexpr const char* kAttrPhase = "phase";  // lifecycle: created/deleted
inline constexpr const char* kAttrRepair = "repair";  // repair record id
inline constexpr const char* kAttrSteps = "steps";  // total plan step count
                                                    // (same on every phase)
inline constexpr const char* kAttrShard = "shard";  // fleet tenant name
inline constexpr const char* kAttrState = "state";  // health state value

// Interned counterparts (interning is idempotent and thread-safe; these
// initialize once at startup).
inline const util::Symbol kProbeLatencySym = util::Symbol::intern(kProbeLatency);
inline const util::Symbol kProbeQueueSym = util::Symbol::intern(kProbeQueue);
inline const util::Symbol kProbeBandwidthSym =
    util::Symbol::intern(kProbeBandwidth);
inline const util::Symbol kProbeUtilizationSym =
    util::Symbol::intern(kProbeUtilization);
inline const util::Symbol kProbeMethodCallSym =
    util::Symbol::intern(kProbeMethodCall);

inline const util::Symbol kGaugeReportSym = util::Symbol::intern(kGaugeReport);
inline const util::Symbol kGaugeLifecycleSym =
    util::Symbol::intern(kGaugeLifecycle);
inline const util::Symbol kRepairPlanSym = util::Symbol::intern(kRepairPlan);
inline const util::Symbol kFleetHealthSym = util::Symbol::intern(kFleetHealth);

inline const util::Symbol kAttrElementSym = util::Symbol::intern(kAttrElement);
inline const util::Symbol kAttrPropertySym = util::Symbol::intern(kAttrProperty);
inline const util::Symbol kAttrValueSym = util::Symbol::intern(kAttrValue);
inline const util::Symbol kAttrGaugeIdSym = util::Symbol::intern(kAttrGaugeId);
inline const util::Symbol kAttrClientSym = util::Symbol::intern(kAttrClient);
inline const util::Symbol kAttrGroupSym = util::Symbol::intern(kAttrGroup);
inline const util::Symbol kAttrPhaseSym = util::Symbol::intern(kAttrPhase);
inline const util::Symbol kAttrRepairSym = util::Symbol::intern(kAttrRepair);
inline const util::Symbol kAttrStepsSym = util::Symbol::intern(kAttrSteps);
inline const util::Symbol kAttrShardSym = util::Symbol::intern(kAttrShard);
inline const util::Symbol kAttrStateSym = util::Symbol::intern(kAttrState);

// Lifecycle phase values.
inline const util::Symbol kPhaseCreated = util::Symbol::intern("created");
inline const util::Symbol kPhaseDeleted = util::Symbol::intern("deleted");
inline const util::Symbol kPhaseRelocating = util::Symbol::intern("relocating");
// Gauge-liveness watchdog phases: a live gauge whose channel has gone
// silent past the staleness threshold is marked suspect; the next report
// that gets through clears it.
inline const util::Symbol kPhaseSuspect = util::Symbol::intern("suspect");
inline const util::Symbol kPhaseCleared = util::Symbol::intern("cleared");

// Repair-plan phase values.
inline const util::Symbol kPhasePlanStarted = util::Symbol::intern("plan-started");
inline const util::Symbol kPhasePlanCompleted =
    util::Symbol::intern("plan-completed");
inline const util::Symbol kPhasePlanPreempted =
    util::Symbol::intern("plan-preempted");
inline const util::Symbol kPhasePlanFailed = util::Symbol::intern("plan-failed");

// Fleet health-state values (kAttrState on kFleetHealth notifications).
inline const util::Symbol kStateHealthy = util::Symbol::intern("healthy");
inline const util::Symbol kStateDegraded = util::Symbol::intern("degraded");
inline const util::Symbol kStateQuarantined =
    util::Symbol::intern("quarantined");
inline const util::Symbol kStateRecovering = util::Symbol::intern("recovering");

}  // namespace arcadia::monitor::topics
