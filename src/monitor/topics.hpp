// Well-known bus topics and attribute names for the monitoring stack
// (Figure 4): probes publish observations on the probe bus; gauges publish
// interpreted model properties on the gauge reporting bus; the gauge
// manager publishes lifecycle messages per the gauge protocol.
#pragma once

namespace arcadia::monitor::topics {

// Probe bus.
inline constexpr const char* kProbeLatency = "probe.latency";
inline constexpr const char* kProbeQueue = "probe.queue";
inline constexpr const char* kProbeBandwidth = "probe.bandwidth";
inline constexpr const char* kProbeUtilization = "probe.utilization";
inline constexpr const char* kProbeMethodCall = "probe.method_call";

// Gauge reporting bus.
inline constexpr const char* kGaugeReport = "gauge.report";
inline constexpr const char* kGaugeLifecycle = "gauge.lifecycle";

// Common attribute names.
inline constexpr const char* kAttrElement = "element";    // model element
inline constexpr const char* kAttrProperty = "property";  // model property
inline constexpr const char* kAttrValue = "value";
inline constexpr const char* kAttrGaugeId = "gauge";
inline constexpr const char* kAttrClient = "client";
inline constexpr const char* kAttrGroup = "group";
inline constexpr const char* kAttrPhase = "phase";  // lifecycle: created/deleted

}  // namespace arcadia::monitor::topics
