// Probes: the lowest monitoring layer (Figure 4), deployed into the target
// system. The paper used Remos wrappers for network observations and
// AIDE-instrumented Java methods for application events; here probes attach
// to the simulated runtime's instrumentation hooks and publish observations
// on the probe bus.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "events/bus.hpp"
#include "remos/remos.hpp"
#include "sim/app.hpp"
#include "sim/simulator.hpp"
#include "util/symbol.hpp"

namespace arcadia::monitor {

namespace detail {
/// Lazily interned per-index name symbols (client/group names are stable
/// for an app's lifetime). Probes publish every period; this keeps the
/// steady state free of string hashing — `name` is only read on the first
/// sighting of an index.
class NameCache {
 public:
  util::Symbol get(std::size_t idx, const std::string& name) {
    if (idx >= syms_.size()) syms_.resize(idx + 1);
    if (syms_[idx].empty()) syms_[idx] = util::Symbol::intern(name);
    return syms_[idx];
  }

 private:
  std::vector<util::Symbol> syms_;
};
}  // namespace detail

/// Base: deployable/undeployable observation source.
class Probe {
 public:
  explicit Probe(std::string id) : id_(std::move(id)) {}
  virtual ~Probe() = default;
  const std::string& id() const { return id_; }
  virtual void start() = 0;
  virtual void stop() = 0;
  bool running() const { return running_; }

 protected:
  bool running_ = false;

 private:
  std::string id_;
};

/// Publishes probe.latency for every completed response. Implemented by
/// instrumenting the client's response-received path (the AIDE analogue);
/// chains any previously-installed hook.
///
/// Also runs a stall detector: when a client's oldest unanswered request
/// is older than `stall_threshold`, its age is published as a latency
/// observation each period. Without this, a fully starved client (no
/// responses completing at all) would be invisible to the latency gauge.
class LatencyProbe : public Probe {
 public:
  LatencyProbe(sim::Simulator& sim, sim::GridApp& app, events::EventBus& bus,
               SimTime stall_check_period = SimTime::seconds(5),
               SimTime stall_threshold = SimTime::seconds(10));
  ~LatencyProbe() override;
  void start() override;
  void stop() override;

 private:
  void publish_latency(sim::ClientIdx client, double seconds);
  sim::Simulator& sim_;
  sim::GridApp& app_;
  events::EventBus& bus_;
  SimTime stall_check_period_;
  SimTime stall_threshold_;
  std::function<void(const sim::Request&)> chained_;
  std::unique_ptr<sim::PeriodicTask> stall_task_;
  detail::NameCache client_syms_;
  bool installed_ = false;
};

/// Samples every group's queue length each period (the paper measures
/// "server load by measuring the size of the queue of waiting client
/// requests").
class QueueLengthProbe : public Probe {
 public:
  QueueLengthProbe(sim::Simulator& sim, sim::GridApp& app,
                   events::EventBus& bus, SimTime period);
  void start() override;
  void stop() override;

 private:
  sim::Simulator& sim_;
  sim::GridApp& app_;
  events::EventBus& bus_;
  SimTime period_;
  std::unique_ptr<sim::PeriodicTask> task_;
  detail::NameCache group_syms_;
};

/// Samples the busy fraction of each group's active servers.
class UtilizationProbe : public Probe {
 public:
  UtilizationProbe(sim::Simulator& sim, sim::GridApp& app,
                   events::EventBus& bus, SimTime period);
  void start() override;
  void stop() override;

 private:
  sim::Simulator& sim_;
  sim::GridApp& app_;
  events::EventBus& bus_;
  SimTime period_;
  std::unique_ptr<sim::PeriodicTask> task_;
  detail::NameCache group_syms_;
};

/// Periodically queries Remos for the available bandwidth from each
/// client's current server group to the client (the direction responses
/// travel) and publishes probe.bandwidth.
class BandwidthProbe : public Probe {
 public:
  BandwidthProbe(sim::Simulator& sim, sim::GridApp& app,
                 remos::RemosService& remos, events::EventBus& bus,
                 SimTime period);
  void start() override;
  void stop() override;

 private:
  sim::Simulator& sim_;
  sim::GridApp& app_;
  remos::RemosService& remos_;
  events::EventBus& bus_;
  SimTime period_;
  std::unique_ptr<sim::PeriodicTask> task_;
  detail::NameCache client_syms_;
  detail::NameCache group_syms_;
};

/// AIDE-style method-call counter: counts request enqueues per group and
/// publishes the per-period call rate. Demonstrates the generic
/// instrumentation path; the adaptation loop does not depend on it.
class MethodCallProbe : public Probe {
 public:
  MethodCallProbe(sim::Simulator& sim, sim::GridApp& app,
                  events::EventBus& bus, SimTime period);
  ~MethodCallProbe() override;
  void start() override;
  void stop() override;

 private:
  sim::Simulator& sim_;
  sim::GridApp& app_;
  events::EventBus& bus_;
  SimTime period_;
  std::vector<std::uint64_t> counts_;
  std::function<void(const sim::Request&, sim::GroupIdx)> chained_;
  std::unique_ptr<sim::PeriodicTask> task_;
  detail::NameCache group_syms_;
  bool installed_ = false;
};

/// Convenience bundle: deploy the full probe set the paper's experiment
/// needs (latency, queue length, utilization, bandwidth).
struct ProbeSet {
  std::vector<std::unique_ptr<Probe>> probes;
  void start_all() {
    for (auto& p : probes) p->start();
  }
  void stop_all() {
    for (auto& p : probes) p->stop();
  }
};

ProbeSet make_standard_probes(sim::Simulator& sim, sim::GridApp& app,
                              remos::RemosService& remos,
                              events::EventBus& probe_bus,
                              SimTime sample_period);

}  // namespace arcadia::monitor
