#include "monitor/probes.hpp"

#include "monitor/topics.hpp"

namespace arcadia::monitor {

namespace {
// MethodCallProbe's fixed attribute names/values, interned once.
const util::Symbol kAttrMethod = util::Symbol::intern("method");
const util::Symbol kMethodEnqueue = util::Symbol::intern("enqueueRequest");
}  // namespace

LatencyProbe::LatencyProbe(sim::Simulator& sim, sim::GridApp& app,
                           events::EventBus& bus, SimTime stall_check_period,
                           SimTime stall_threshold)
    : Probe("probe:latency"),
      sim_(sim),
      app_(app),
      bus_(bus),
      stall_check_period_(stall_check_period),
      stall_threshold_(stall_threshold) {}

LatencyProbe::~LatencyProbe() { stop(); }

void LatencyProbe::publish_latency(sim::ClientIdx client, double seconds) {
  events::Notification n(topics::kProbeLatencySym);
  n.set(topics::kAttrClientSym,
        client_syms_.get(client, app_.client_name(client)))
      .set(topics::kAttrValueSym, seconds);
  n.source_node = app_.client_node(client);
  n.wire_size = DataSize::bytes(256);
  bus_.publish(std::move(n));
}

void LatencyProbe::start() {
  running_ = true;
  if (!installed_) {
    chained_ = app_.on_response;
    app_.on_response = [this](const sim::Request& req) {
      if (running_) publish_latency(req.client, req.latency().as_seconds());
      if (chained_) chained_(req);
    };
    installed_ = true;
  }
  stall_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + stall_check_period_, stall_check_period_, [this] {
        for (sim::ClientIdx c = 0;
             c < static_cast<sim::ClientIdx>(app_.client_count()); ++c) {
          SimTime age = app_.oldest_outstanding_age(c);
          if (age >= stall_threshold_) {
            publish_latency(c, age.as_seconds());
          }
        }
        return true;
      });
}

void LatencyProbe::stop() {
  running_ = false;
  stall_task_.reset();
}

QueueLengthProbe::QueueLengthProbe(sim::Simulator& sim, sim::GridApp& app,
                                   events::EventBus& bus, SimTime period)
    : Probe("probe:queue"), sim_(sim), app_(app), bus_(bus), period_(period) {}

void QueueLengthProbe::start() {
  running_ = true;
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + period_, period_, [this] {
        for (sim::GroupIdx g = 0;
             g < static_cast<sim::GroupIdx>(app_.group_count()); ++g) {
          events::Notification n(topics::kProbeQueueSym);
          n.set(topics::kAttrGroupSym,
                group_syms_.get(g, app_.group_name(g)))
              .set(topics::kAttrValueSym,
                   static_cast<std::int64_t>(app_.queue_length(g)));
          n.source_node = app_.queue_node();
          n.wire_size = DataSize::bytes(128);
          bus_.publish(std::move(n));
        }
        return true;
      });
}

void QueueLengthProbe::stop() {
  running_ = false;
  task_.reset();
}

UtilizationProbe::UtilizationProbe(sim::Simulator& sim, sim::GridApp& app,
                                   events::EventBus& bus, SimTime period)
    : Probe("probe:utilization"), sim_(sim), app_(app), bus_(bus),
      period_(period) {}

void UtilizationProbe::start() {
  running_ = true;
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + period_, period_, [this] {
        for (sim::GroupIdx g = 0;
             g < static_cast<sim::GroupIdx>(app_.group_count()); ++g) {
          events::Notification n(topics::kProbeUtilizationSym);
          n.set(topics::kAttrGroupSym,
                group_syms_.get(g, app_.group_name(g)))
              .set(topics::kAttrValueSym, app_.group_utilization(g));
          n.source_node = app_.queue_node();
          n.wire_size = DataSize::bytes(128);
          bus_.publish(std::move(n));
        }
        return true;
      });
}

void UtilizationProbe::stop() {
  running_ = false;
  task_.reset();
}

BandwidthProbe::BandwidthProbe(sim::Simulator& sim, sim::GridApp& app,
                               remos::RemosService& remos,
                               events::EventBus& bus, SimTime period)
    : Probe("probe:bandwidth"), sim_(sim), app_(app), remos_(remos), bus_(bus),
      period_(period) {}

void BandwidthProbe::start() {
  running_ = true;
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + period_, period_, [this] {
        for (sim::ClientIdx c = 0;
             c < static_cast<sim::ClientIdx>(app_.client_count()); ++c) {
          sim::GroupIdx g = app_.client_group(c);
          if (g == sim::kNoGroup) continue;
          Bandwidth bw =
              remos_.get_flow(app_.group_node(g), app_.client_node(c));
          events::Notification n(topics::kProbeBandwidthSym);
          n.set(topics::kAttrClientSym,
                client_syms_.get(c, app_.client_name(c)))
              .set(topics::kAttrGroupSym,
                   group_syms_.get(g, app_.group_name(g)))
              .set(topics::kAttrValueSym, bw.as_bps());
          n.source_node = app_.client_node(c);
          n.wire_size = DataSize::bytes(128);
          bus_.publish(std::move(n));
        }
        return true;
      });
}

void BandwidthProbe::stop() {
  running_ = false;
  task_.reset();
}

MethodCallProbe::MethodCallProbe(sim::Simulator& sim, sim::GridApp& app,
                                 events::EventBus& bus, SimTime period)
    : Probe("probe:method_call"), sim_(sim), app_(app), bus_(bus),
      period_(period) {}

MethodCallProbe::~MethodCallProbe() { stop(); }

void MethodCallProbe::start() {
  counts_.assign(app_.group_count(), 0);
  if (!installed_) {
    chained_ = app_.on_enqueue;
    app_.on_enqueue = [this](const sim::Request& req, sim::GroupIdx g) {
      if (running_ && g >= 0 && g < static_cast<sim::GroupIdx>(counts_.size())) {
        ++counts_[g];
      }
      if (chained_) chained_(req, g);
    };
    installed_ = true;
  }
  running_ = true;
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + period_, period_, [this] {
        for (std::size_t g = 0; g < counts_.size(); ++g) {
          events::Notification n(topics::kProbeMethodCallSym);
          n.set(topics::kAttrGroupSym,
                group_syms_.get(g, app_.group_name(
                                       static_cast<sim::GroupIdx>(g))))
              .set(kAttrMethod, kMethodEnqueue)
              .set(topics::kAttrValueSym,
                   static_cast<double>(counts_[g]) / period_.as_seconds());
          n.source_node = app_.queue_node();
          n.wire_size = DataSize::bytes(128);
          bus_.publish(std::move(n));
          counts_[g] = 0;
        }
        return true;
      });
}

void MethodCallProbe::stop() {
  running_ = false;
  task_.reset();
}

ProbeSet make_standard_probes(sim::Simulator& sim, sim::GridApp& app,
                              remos::RemosService& remos,
                              events::EventBus& probe_bus,
                              SimTime sample_period) {
  ProbeSet set;
  set.probes.push_back(std::make_unique<LatencyProbe>(sim, app, probe_bus));
  set.probes.push_back(
      std::make_unique<QueueLengthProbe>(sim, app, probe_bus, sample_period));
  set.probes.push_back(
      std::make_unique<UtilizationProbe>(sim, app, probe_bus, sample_period));
  set.probes.push_back(std::make_unique<BandwidthProbe>(
      sim, app, remos, probe_bus, sample_period));
  return set;
}

}  // namespace arcadia::monitor
