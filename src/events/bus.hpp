// Event buses. The paper's monitoring infrastructure runs two logical buses
// (a probe bus and a gauge reporting bus) over Siena. Arcadia provides:
//   * LocalEventBus  — immediate synchronous dispatch, thread-safe; for
//                      standalone use of the monitoring stack.
//   * SimEventBus    — dispatch scheduled through the Simulator with a
//                      pluggable per-delivery delay model. With the
//                      network-aware delay model, monitoring messages slow
//                      down exactly when the network is congested — the
//                      paper's "the same network is being used to monitor
//                      the system as to run it" observation. A QoS mode
//                      (prioritized monitoring traffic) removes that
//                      penalty, implementing the mitigation the paper
//                      proposes in Section 5.3.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "events/filter.hpp"
#include "events/notification.hpp"
#include "sim/simulator.hpp"

namespace arcadia::events {

using SubscriptionId = std::uint64_t;
using Handler = std::function<void(const Notification&)>;

struct BusStats {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_match = 0;
};

class EventBus {
 public:
  virtual ~EventBus() = default;

  /// Register a handler; `subscriber_node` is where the subscriber runs
  /// (used by delay models; kNoNode = colocated/no delay).
  virtual SubscriptionId subscribe(Filter filter, Handler handler,
                                   sim::NodeId subscriber_node) = 0;
  SubscriptionId subscribe(Filter filter, Handler handler) {
    return subscribe(std::move(filter), std::move(handler), sim::kNoNode);
  }
  virtual void unsubscribe(SubscriptionId id) = 0;
  virtual void publish(Notification n) = 0;
  virtual const BusStats& stats() const = 0;
};

/// Immediate dispatch. Handlers run on the publisher's thread, under no
/// bus lock (subscriptions are snapshotted), so handlers may re-enter the
/// bus (publish, subscribe, unsubscribe).
class LocalEventBus : public EventBus {
 public:
  SubscriptionId subscribe(Filter filter, Handler handler,
                           sim::NodeId subscriber_node) override;
  using EventBus::subscribe;
  void unsubscribe(SubscriptionId id) override;
  void publish(Notification n) override;
  const BusStats& stats() const override { return stats_; }

 private:
  struct Sub {
    SubscriptionId id;
    Filter filter;
    std::shared_ptr<Handler> handler;
  };
  mutable std::mutex mutex_;
  std::vector<Sub> subs_;
  SubscriptionId next_id_ = 1;
  BusStats stats_;
};

/// Computes the delivery delay of a notification to a subscriber node.
using DelayModel =
    std::function<SimTime(const Notification&, sim::NodeId subscriber)>;

/// Fixed-delay model (the LAN base cost).
DelayModel fixed_delay(SimTime delay);

/// Network-aware model: base + wire_size / available_bandwidth(source ->
/// subscriber). When `prioritized` (QoS for monitoring traffic) the
/// congestion term is dropped.
DelayModel network_delay(const sim::FlowNetwork& net, SimTime base,
                         bool prioritized);

/// Bus whose deliveries are simulator events.
class SimEventBus : public EventBus {
 public:
  SimEventBus(sim::Simulator& sim, DelayModel delay);

  SubscriptionId subscribe(Filter filter, Handler handler,
                           sim::NodeId subscriber_node) override;
  using EventBus::subscribe;
  void unsubscribe(SubscriptionId id) override;
  void publish(Notification n) override;
  const BusStats& stats() const override { return stats_; }

  /// Total queued-but-undelivered notifications (for tests/benches).
  std::uint64_t in_flight() const { return in_flight_; }

 private:
  struct Sub {
    SubscriptionId id;
    Filter filter;
    std::shared_ptr<Handler> handler;
    sim::NodeId node;
    std::shared_ptr<bool> alive;
  };
  sim::Simulator& sim_;
  DelayModel delay_;
  std::vector<Sub> subs_;
  SubscriptionId next_id_ = 1;
  BusStats stats_;
  std::uint64_t in_flight_ = 0;
};

}  // namespace arcadia::events
