// Event buses. The paper's monitoring infrastructure runs two logical buses
// (a probe bus and a gauge reporting bus) over Siena. Arcadia provides:
//   * LocalEventBus  — immediate synchronous dispatch, thread-safe; for
//                      standalone use of the monitoring stack.
//   * SimEventBus    — dispatch scheduled through the Simulator with a
//                      pluggable per-delivery delay model. With the
//                      network-aware delay model, monitoring messages slow
//                      down exactly when the network is congested — the
//                      paper's "the same network is being used to monitor
//                      the system as to run it" observation. A QoS mode
//                      (prioritized monitoring traffic) removes that
//                      penalty, implementing the mitigation the paper
//                      proposes in Section 5.3.
//
// Hot-path design (the monitoring pipeline pushes ~10^5 notifications per
// simulated run through these):
//   * topic-indexed routing — exact-topic subscriptions live in a
//     SymbolMap<topic -> dense slot list>; publish touches only that
//     bucket plus the (rare) wildcard/any fallback list, instead of
//     filter-scanning every subscriber;
//   * slot + generation subscriptions — subscriber state lives in pooled
//     slots; unsubscribe bumps the slot's generation, which both drops
//     in-flight SimEventBus deliveries (like messages to a deleted Siena
//     subscription) and lets the slot be reused without invalidating
//     anything. No per-publish snapshot copy of the subscription vector:
//     LocalEventBus gathers matches into a pooled scratch buffer,
//     SimEventBus's pending deliveries carry (slot, generation) pairs;
//   * shared-payload delivery — all matched subscribers of one publish see
//     the same immutable notification; SimEventBus recycles payloads
//     through a use_count-scanned pool, so a steady publish stream does
//     not allocate at all.
// Delivery order is unchanged from the scan design: candidates are merged
// across the exact bucket and the fallback list in subscription order, so
// per-subscriber FIFO and cross-subscriber determinism hold bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "events/filter.hpp"
#include "events/notification.hpp"
#include "sim/simulator.hpp"
#include "util/annotations.hpp"
#include "util/symbol.hpp"

namespace arcadia::events {

using SubscriptionId = std::uint64_t;
using Handler = std::function<void(const Notification&)>;

struct BusStats {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_match = 0;
};

class EventBus {
 public:
  virtual ~EventBus() = default;

  /// Register a handler; `subscriber_node` is where the subscriber runs
  /// (used by delay models; kNoNode = colocated/no delay).
  virtual SubscriptionId subscribe(Filter filter, Handler handler,
                                   sim::NodeId subscriber_node) = 0;
  SubscriptionId subscribe(Filter filter, Handler handler) {
    return subscribe(std::move(filter), std::move(handler), sim::kNoNode);
  }
  virtual void unsubscribe(SubscriptionId id) = 0;
  virtual void publish(Notification n) = 0;
  virtual const BusStats& stats() const = 0;
};

namespace detail {

/// Topic-indexed subscription storage shared by both buses: pooled slots
/// with generations, an exact-topic index, and a fallback list for
/// any/prefix filters. Candidate iteration merges the two lists in
/// subscription order (ids are monotonic), preserving the delivery order
/// of the linear-scan design this replaced. Not synchronized — callers
/// lock (LocalEventBus) or are single-threaded (SimEventBus).
template <typename SubData>
class SubTable {
 public:
  struct Slot {
    SubscriptionId id = 0;  ///< 0 = free
    Filter filter;
    SubData data;
    std::uint32_t gen = 1;
  };

  std::uint32_t add(SubscriptionId id, Filter filter, SubData data) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      slots_.emplace_back();
      idx = static_cast<std::uint32_t>(slots_.size() - 1);
    }
    Slot& s = slots_[idx];
    s.id = id;
    s.filter = std::move(filter);
    s.data = std::move(data);
    if (s.filter.topic_kind() == Filter::TopicKind::Exact) {
      exact_[s.filter.topic_symbol()].push_back(idx);
    } else {
      fallback_.push_back(idx);
    }
    return idx;
  }

  /// Unsubscribe: detach from the index, bump the generation (dropping any
  /// in-flight deliveries holding the old one), and recycle the slot.
  /// Callers must not hold references into the slot across this — both
  /// buses dispatch from refcounted handler copies, never from the slot.
  bool remove(SubscriptionId id) {
    for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
      Slot& s = slots_[idx];
      if (s.id != id) continue;
      auto detach = [idx](std::vector<std::uint32_t>& list) {
        for (auto it = list.begin(); it != list.end(); ++it) {
          if (*it == idx) {
            list.erase(it);
            return;
          }
        }
      };
      if (s.filter.topic_kind() == Filter::TopicKind::Exact) {
        if (auto* bucket = exact_.find(s.filter.topic_symbol())) {
          detach(*bucket);
        }
      } else {
        detach(fallback_);
      }
      s.id = 0;
      ++s.gen;
      s.data = SubData{};
      free_.push_back(idx);
      return true;
    }
    return false;
  }

  bool alive(std::uint32_t idx, std::uint32_t gen) const {
    return idx < slots_.size() && slots_[idx].gen == gen;
  }
  Slot& slot(std::uint32_t idx) { return slots_[idx]; }

  /// Visit candidate subscriptions for `topic` in subscription order.
  /// `fn(slot_index, slot, topic_prechecked)`: exact-bucket candidates have
  /// already matched on topic, fallback candidates have not.
  template <typename Fn>
  void for_candidates(util::Symbol topic, Fn&& fn) {
    const std::vector<std::uint32_t>* bucket = exact_.find(topic);
    std::size_t bi = 0, fi = 0;
    const std::size_t bn = bucket ? bucket->size() : 0;
    const std::size_t fn_count = fallback_.size();
    while (bi < bn || fi < fn_count) {
      bool take_bucket;
      if (bi >= bn) {
        take_bucket = false;
      } else if (fi >= fn_count) {
        take_bucket = true;
      } else {
        take_bucket =
            slots_[(*bucket)[bi]].id < slots_[fallback_[fi]].id;
      }
      if (take_bucket) {
        const std::uint32_t idx = (*bucket)[bi++];
        fn(idx, slots_[idx], true);
      } else {
        const std::uint32_t idx = fallback_[fi++];
        fn(idx, slots_[idx], false);
      }
    }
  }

 private:
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  util::SymbolMap<std::vector<std::uint32_t>> exact_;
  std::vector<std::uint32_t> fallback_;  ///< any/prefix-topic filters
};

/// Recycles shared notification payloads: a pool entry whose use_count has
/// dropped back to 1 (no pending deliveries) is reused in place, so a
/// steady publish stream performs zero heap allocations.
class PayloadPool {
 public:
  NotificationPtr acquire(Notification&& n) {
    const std::size_t count = pool_.size();
    for (std::size_t step = 0; step < count; ++step) {
      cursor_ = (cursor_ + 1 < count) ? cursor_ + 1 : 0;
      std::shared_ptr<Notification>& slot = pool_[cursor_];
      if (slot.use_count() == 1) {
        *slot = std::move(n);
        return slot;
      }
    }
    pool_.push_back(std::make_shared<Notification>(std::move(n)));
    cursor_ = pool_.size() - 1;
    return pool_.back();
  }

  std::size_t size() const { return pool_.size(); }

 private:
  std::vector<std::shared_ptr<Notification>> pool_;
  std::size_t cursor_ = 0;
};

}  // namespace detail

/// Immediate dispatch. Handlers run on the publisher's thread, under no
/// bus lock (matches are gathered into a pooled scratch snapshot first),
/// so handlers may re-enter the bus (publish, subscribe, unsubscribe).
/// Snapshot semantics: subscribers added during a dispatch do not see the
/// in-flight notification; a subscriber unsubscribed mid-dispatch may
/// still receive it (its handler is kept alive by the snapshot).
class LocalEventBus : public EventBus {
 public:
  SubscriptionId subscribe(Filter filter, Handler handler,
                           sim::NodeId subscriber_node) override;
  using EventBus::subscribe;
  void unsubscribe(SubscriptionId id) override;
  void publish(Notification n) override;
  /// Quiescent read: the counters are mutated under the bus mutex, but the
  /// accessor hands out an unlocked reference — callers read it only after
  /// concurrent publishers have been joined (tests/benches do exactly
  /// that). Analysis is off for this one deliberate hole.
  const BusStats& stats() const ARC_NO_TSA override { return stats_; }

 private:
  struct SubData {
    std::shared_ptr<Handler> handler;
  };
  using Scratch = std::vector<std::shared_ptr<Handler>>;

  /// Reusable match buffers (thread-local; one per re-entrant publish
  /// depth). Each retains its capacity, so steady-state publishes never
  /// allocate and scratch management takes no lock.
  static std::vector<std::unique_ptr<Scratch>>& scratch_pool();
  std::unique_ptr<Scratch> acquire_scratch();

  mutable util::Mutex mutex_;
  detail::SubTable<SubData> subs_ ARC_GUARDED_BY(mutex_);
  SubscriptionId next_id_ ARC_GUARDED_BY(mutex_) = 1;
  BusStats stats_ ARC_GUARDED_BY(mutex_);
};

/// Computes the delivery delay of a notification to a subscriber node.
using DelayModel =
    std::function<SimTime(const Notification&, sim::NodeId subscriber)>;

/// Fixed-delay model (the LAN base cost).
DelayModel fixed_delay(SimTime delay);

/// Network-aware model: base + wire_size / available_bandwidth(source ->
/// subscriber). When `prioritized` (QoS for monitoring traffic) the
/// congestion term is dropped.
DelayModel network_delay(const sim::FlowNetwork& net, SimTime base,
                         bool prioritized);

/// Bus whose deliveries are simulator events. All matched subscribers of a
/// publish share one pooled immutable payload; each pending delivery is a
/// (payload, slot, generation) triple small enough to live inline in the
/// simulator's event slot. Single-threaded, like the simulator itself.
class SimEventBus : public EventBus {
 public:
  SimEventBus(sim::Simulator& sim, DelayModel delay);

  SubscriptionId subscribe(Filter filter, Handler handler,
                           sim::NodeId subscriber_node) override;
  using EventBus::subscribe;
  void unsubscribe(SubscriptionId id) override;
  void publish(Notification n) override;
  const BusStats& stats() const override { return stats_; }

  /// Total queued-but-undelivered notifications (for tests/benches).
  std::uint64_t in_flight() const { return in_flight_; }

 private:
  /// The handler is refcounted so a delivery can pin the closure with one
  /// atomic bump before invoking it: a handler that re-entrantly
  /// subscribes (slot vector may reallocate) or unsubscribes itself stays
  /// alive for the remainder of its own call.
  struct SubData {
    std::shared_ptr<Handler> handler;
    sim::NodeId node = sim::kNoNode;
  };
  void deliver(std::uint32_t idx, std::uint32_t gen, const Notification& n);

  sim::Simulator& sim_;
  DelayModel delay_;
  /// Single-threaded by contract (deliveries are simulator events, and the
  /// simulator is single-threaded); the domain turns a cross-thread call
  /// into a debug abort instead of a silent race.
  util::SerialDomain serial_;
  detail::SubTable<SubData> subs_;
  detail::PayloadPool payloads_;
  SubscriptionId next_id_ = 1;
  BusStats stats_;
  std::uint64_t in_flight_ = 0;
};

}  // namespace arcadia::events
