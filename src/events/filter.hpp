// Content-based subscription filters: a topic pattern plus a conjunction of
// attribute constraints, following Siena's filter model.
#pragma once

#include <string>
#include <vector>

#include "events/notification.hpp"

namespace arcadia::events {

enum class Op {
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Exists,    ///< attribute present, value ignored
  Prefix,    ///< string starts-with
  Suffix,    ///< string ends-with
  Contains,  ///< string substring
};

const char* to_string(Op op);

struct AttrConstraint {
  std::string name;
  Op op = Op::Exists;
  Value value;
};

/// Conjunctive filter. Topic pattern: exact match, "" (all topics), or a
/// prefix ending in '*' ("gauge.*").
class Filter {
 public:
  Filter() = default;
  static Filter topic(std::string pattern) {
    Filter f;
    f.topic_ = std::move(pattern);
    return f;
  }
  static Filter any() { return Filter(); }

  Filter& where(std::string name, Op op, Value value = Value()) {
    constraints_.push_back({std::move(name), op, std::move(value)});
    return *this;
  }

  bool matches(const Notification& n) const;

  const std::string& topic_pattern() const { return topic_; }
  const std::vector<AttrConstraint>& constraints() const { return constraints_; }

 private:
  static bool match_constraint(const AttrConstraint& c, const Notification& n);
  std::string topic_;
  std::vector<AttrConstraint> constraints_;
};

}  // namespace arcadia::events
