// Content-based subscription filters: a topic pattern plus a conjunction of
// attribute constraints, following Siena's filter model.
//
// The topic pattern is classified once at construction — exact (interned
// symbol, id-compared), prefix ("probe.*"), or any — so the buses can route
// exact-topic subscriptions through a topic index and only string-compare
// the wildcard minority. Constraint names are interned; Eq/Ne string
// constraint values are stored as symbols so the common "client == User3"
// match is an integer compare against a symbol-valued attribute.
#pragma once

#include <string>
#include <vector>

#include "events/notification.hpp"

namespace arcadia::events {

enum class Op {
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Exists,    ///< attribute present, value ignored
  Prefix,    ///< string starts-with
  Suffix,    ///< string ends-with
  Contains,  ///< string substring
};

const char* to_string(Op op);

struct AttrConstraint {
  util::Symbol name;
  Op op = Op::Exists;
  Value value;
};

/// Conjunctive filter. Topic pattern: exact match, "" (all topics), or a
/// prefix ending in '*' ("gauge.*").
class Filter {
 public:
  enum class TopicKind {
    Any,     ///< "" — every topic
    Exact,   ///< id-compared against the notification's interned topic
    Prefix,  ///< pattern ending in '*'
  };

  Filter() = default;
  static Filter topic(std::string pattern) {
    Filter f;
    f.set_topic(std::move(pattern));
    return f;
  }
  static Filter topic(util::Symbol pattern) {
    // Classified like the string overload, so a '*'-suffixed symbol is a
    // prefix filter, not an exact match against the literal pattern text.
    Filter f;
    f.set_topic(pattern.str());
    return f;
  }
  static Filter any() { return Filter(); }

  Filter& where(util::Symbol name, Op op, Value value = Value()) {
    // Store Eq/Ne string operands interned: equality is textual either way,
    // and a symbol-vs-symbol compare is one integer op on the match path.
    if ((op == Op::Eq || op == Op::Ne) && value.is_string()) {
      value = Value(value.to_symbol());
    }
    constraints_.push_back({name, op, std::move(value)});
    return *this;
  }
  Filter& where(std::string_view name, Op op, Value value = Value()) {
    return where(util::Symbol::intern(name), op, std::move(value));
  }

  bool matches(const Notification& n) const;
  /// The attribute-constraint half of matches(); used by the indexed buses,
  /// which have already routed on the topic.
  bool matches_constraints(const Notification& n) const;

  TopicKind topic_kind() const { return kind_; }
  /// Interned topic for Exact filters (empty symbol otherwise).
  util::Symbol topic_symbol() const { return topic_sym_; }
  const std::string& topic_pattern() const { return topic_; }
  const std::vector<AttrConstraint>& constraints() const { return constraints_; }

 private:
  void set_topic(std::string pattern);
  static bool match_constraint(const AttrConstraint& c, const Notification& n);
  std::string topic_;
  util::Symbol topic_sym_;  ///< set for Exact
  TopicKind kind_ = TopicKind::Any;
  std::vector<AttrConstraint> constraints_;
};

}  // namespace arcadia::events
