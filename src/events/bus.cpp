#include "events/bus.hpp"

#include <algorithm>

namespace arcadia::events {

SubscriptionId LocalEventBus::subscribe(Filter filter, Handler handler,
                                        sim::NodeId /*subscriber_node*/) {
  util::MutexLock lock(mutex_);
  SubscriptionId id = next_id_++;
  subs_.add(id, std::move(filter),
            SubData{std::make_shared<Handler>(std::move(handler))});
  return id;
}

void LocalEventBus::unsubscribe(SubscriptionId id) {
  util::MutexLock lock(mutex_);
  // Immediate slot reuse is safe: dispatched handlers run from
  // snapshot-held shared_ptrs, never from the slot.
  subs_.remove(id);
}

std::unique_ptr<LocalEventBus::Scratch> LocalEventBus::acquire_scratch() {
  // Thread-local, so snapshot buffers need no lock of their own: one buffer
  // per publish depth (re-entrant publishes nest), each keeping its
  // capacity across publishes.
  auto& pool = scratch_pool();
  if (pool.empty()) return std::make_unique<Scratch>();
  auto scratch = std::move(pool.back());
  pool.pop_back();
  return scratch;
}

std::vector<std::unique_ptr<LocalEventBus::Scratch>>&
LocalEventBus::scratch_pool() {
  static thread_local std::vector<std::unique_ptr<Scratch>> pool;
  return pool;
}

void LocalEventBus::publish(Notification n) {
  std::unique_ptr<Scratch> targets = acquire_scratch();
  {
    util::MutexLock lock(mutex_);
    ++stats_.published;
    subs_.for_candidates(
        n.topic, [&](std::uint32_t, auto& slot, bool topic_prechecked) {
          const bool hit = topic_prechecked
                               ? slot.filter.matches_constraints(n)
                               : slot.filter.matches(n);
          if (hit) targets->push_back(slot.data.handler);
        });
    if (targets->empty()) {
      ++stats_.dropped_no_match;
    } else {
      stats_.delivered += targets->size();
    }
  }
  for (const auto& h : *targets) (*h)(n);
  targets->clear();  // drop handler refs outside the lock; keep capacity
  scratch_pool().push_back(std::move(targets));
}

DelayModel fixed_delay(SimTime delay) {
  return [delay](const Notification&, sim::NodeId) { return delay; };
}

DelayModel network_delay(const sim::FlowNetwork& net, SimTime base,
                         bool prioritized) {
  return [&net, base, prioritized](const Notification& n,
                                   sim::NodeId subscriber) -> SimTime {
    if (prioritized || n.source_node == sim::kNoNode ||
        subscriber == sim::kNoNode || n.source_node == subscriber) {
      return base;
    }
    Bandwidth avail = net.available_bandwidth(n.source_node, subscriber);
    return base + transfer_time(n.wire_size, avail);
  };
}

SimEventBus::SimEventBus(sim::Simulator& sim, DelayModel delay)
    : sim_(sim), delay_(std::move(delay)) {}

SubscriptionId SimEventBus::subscribe(Filter filter, Handler handler,
                                      sim::NodeId subscriber_node) {
  serial_.check();
  SubscriptionId id = next_id_++;
  subs_.add(id, std::move(filter),
            SubData{std::make_shared<Handler>(std::move(handler)),
                    subscriber_node});
  return id;
}

void SimEventBus::unsubscribe(SubscriptionId id) {
  serial_.check();
  subs_.remove(id);
}

void SimEventBus::deliver(std::uint32_t idx, std::uint32_t gen,
                          const Notification& n) {
  --in_flight_;
  // Generation mismatch: the subscription was deleted while this delivery
  // was in flight — dropped, like messages to a deleted Siena subscription.
  if (!subs_.alive(idx, gen)) return;
  ++stats_.delivered;
  // Pin the closure (refcount bump, no allocation) before invoking: the
  // handler may re-enter the bus — a re-entrant subscribe can reallocate
  // the slot vector, a self-unsubscribe recycles the slot — and the
  // executing closure must outlive its own call either way.
  std::shared_ptr<Handler> handler = subs_.slot(idx).data.handler;
  (*handler)(n);
}

void SimEventBus::publish(Notification n) {
  serial_.check();
  ++stats_.published;
  n.published = sim_.now();
  NotificationPtr shared = payloads_.acquire(std::move(n));
  bool matched = false;
  subs_.for_candidates(
      shared->topic, [&](std::uint32_t idx, auto& slot, bool topic_prechecked) {
        const bool hit = topic_prechecked
                             ? slot.filter.matches_constraints(*shared)
                             : slot.filter.matches(*shared);
        if (!hit) return;
        matched = true;
        SimTime delay = delay_(*shared, slot.data.node);
        ++in_flight_;
        // 32-byte capture: fits the simulator's inline event slot, so a
        // delivery schedules without touching the heap.
        sim_.schedule_in(delay, [this, shared, idx, gen = slot.gen] {
          deliver(idx, gen, *shared);
        });
      });
  if (!matched) ++stats_.dropped_no_match;
}

}  // namespace arcadia::events
