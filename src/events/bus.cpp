#include "events/bus.hpp"

#include <algorithm>

namespace arcadia::events {

SubscriptionId LocalEventBus::subscribe(Filter filter, Handler handler,
                                        sim::NodeId /*subscriber_node*/) {
  std::lock_guard lock(mutex_);
  SubscriptionId id = next_id_++;
  subs_.push_back(
      Sub{id, std::move(filter), std::make_shared<Handler>(std::move(handler))});
  return id;
}

void LocalEventBus::unsubscribe(SubscriptionId id) {
  std::lock_guard lock(mutex_);
  subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                             [id](const Sub& s) { return s.id == id; }),
              subs_.end());
}

void LocalEventBus::publish(Notification n) {
  std::vector<std::shared_ptr<Handler>> targets;
  {
    std::lock_guard lock(mutex_);
    ++stats_.published;
    for (const Sub& s : subs_) {
      if (s.filter.matches(n)) targets.push_back(s.handler);
    }
    if (targets.empty()) {
      ++stats_.dropped_no_match;
    } else {
      stats_.delivered += targets.size();
    }
  }
  for (const auto& h : targets) (*h)(n);
}

DelayModel fixed_delay(SimTime delay) {
  return [delay](const Notification&, sim::NodeId) { return delay; };
}

DelayModel network_delay(const sim::FlowNetwork& net, SimTime base,
                         bool prioritized) {
  return [&net, base, prioritized](const Notification& n,
                                   sim::NodeId subscriber) -> SimTime {
    if (prioritized || n.source_node == sim::kNoNode ||
        subscriber == sim::kNoNode || n.source_node == subscriber) {
      return base;
    }
    Bandwidth avail = net.available_bandwidth(n.source_node, subscriber);
    return base + transfer_time(n.wire_size, avail);
  };
}

SimEventBus::SimEventBus(sim::Simulator& sim, DelayModel delay)
    : sim_(sim), delay_(std::move(delay)) {}

SubscriptionId SimEventBus::subscribe(Filter filter, Handler handler,
                                      sim::NodeId subscriber_node) {
  SubscriptionId id = next_id_++;
  subs_.push_back(Sub{id, std::move(filter),
                      std::make_shared<Handler>(std::move(handler)),
                      subscriber_node, std::make_shared<bool>(true)});
  return id;
}

void SimEventBus::unsubscribe(SubscriptionId id) {
  for (auto& s : subs_) {
    if (s.id == id) *s.alive = false;
  }
  subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                             [id](const Sub& s) { return s.id == id; }),
              subs_.end());
}

void SimEventBus::publish(Notification n) {
  ++stats_.published;
  n.published = sim_.now();
  auto shared = std::make_shared<Notification>(std::move(n));
  bool matched = false;
  for (const Sub& s : subs_) {
    if (!s.filter.matches(*shared)) continue;
    matched = true;
    SimTime delay = delay_(*shared, s.node);
    ++in_flight_;
    // Capture the liveness token: deliveries racing an unsubscribe are
    // dropped, like messages to a deleted Siena subscription.
    sim_.schedule_in(delay,
                     [this, shared, handler = s.handler, alive = s.alive] {
                       --in_flight_;
                       if (!*alive) return;
                       ++stats_.delivered;
                       (*handler)(*shared);
                     });
  }
  if (!matched) ++stats_.dropped_no_match;
}

}  // namespace arcadia::events
