#include "events/value.hpp"

#include <sstream>

namespace arcadia::events {

Value::Value(const Value& other) = default;
Value& Value::operator=(const Value& other) = default;
Value::Value(Value&& other) noexcept = default;
Value& Value::operator=(Value&& other) noexcept = default;
Value::~Value() = default;

bool operator==(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) return a.as_double() == b.as_double();
  if (a.is_bool() && b.is_bool()) return a.as_bool() == b.as_bool();
  if (a.is_symbol() && b.is_symbol()) return a.as_symbol() == b.as_symbol();
  if (a.is_string() && b.is_string()) return a.as_string() == b.as_string();
  return false;
}

bool Value::compare(const Value& a, const Value& b, int& out_cmp) {
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.as_double();
    double y = b.as_double();
    out_cmp = (x < y) ? -1 : (x > y) ? 1 : 0;
    return true;
  }
  if (a.is_string() && b.is_string()) {
    int c = a.as_string().compare(b.as_string());
    out_cmp = (c < 0) ? -1 : (c > 0) ? 1 : 0;
    return true;
  }
  return false;
}

std::string Value::to_string() const {
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::ostringstream os;
    os << as_double();
    return os.str();
  }
  return as_string();
}

}  // namespace arcadia::events
