// A bus notification: an interned topic, a flat attribute list, and
// provenance (source node, publish time) used by the simulated bus to model
// delivery delay over the shared network.
//
// Hot-path layout: the topic is a util::Symbol (4 bytes, id-compared) and
// the attributes live in a small-buffer inline vector of (Symbol, Value)
// pairs. Typical notifications carry <= 6 attributes, so the steady-state
// monitoring traffic (probe observations, gauge reports) constructs,
// matches, and consumes notifications without touching the heap — the
// node-per-attribute std::map this replaced allocated on every set().
// Lookup is a linear scan over inline storage, which beats a tree walk at
// these sizes by a wide margin.
// arclint: hotpath — steady-state code: no std::function (heap-owning
// type erasure); util::SmallFn, templates, or plain data only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "events/value.hpp"
#include "sim/network.hpp"
#include "util/symbol.hpp"
#include "util/units.hpp"

namespace arcadia::events {

/// Insertion-ordered (name, value) list with inline storage for the common
/// attribute counts. Spills to a heap vector only past kInlineCap entries.
class AttrList {
 public:
  struct Attr {
    util::Symbol name;
    Value value;
  };
  static constexpr std::size_t kInlineCap = 6;

  AttrList() = default;
  AttrList(const AttrList& other) { copy_from(other); }
  AttrList& operator=(const AttrList& other) {
    if (this != &other) {
      clear();
      copy_from(other);
    }
    return *this;
  }
  AttrList(AttrList&&) = default;
  AttrList& operator=(AttrList&&) = default;

  std::size_t size() const {
    return overflow_ ? overflow_->size() : inline_size_;
  }
  bool empty() const { return size() == 0; }

  const Attr* begin() const {
    return overflow_ ? overflow_->data() : inline_;
  }
  const Attr* end() const { return begin() + size(); }

  /// Pointer to the value, or nullptr when absent. The notification's own
  /// find — no tree, no hashing, just a short scan of interned ids.
  const Value* find(util::Symbol name) const {
    for (const Attr& a : *this) {
      if (a.name == name) return &a.value;
    }
    return nullptr;
  }
  Value* find(util::Symbol name) {
    return const_cast<Value*>(std::as_const(*this).find(name));
  }

  /// Insert or overwrite, preserving first-insertion order.
  void set(util::Symbol name, Value value) {
    if (Value* existing = find(name)) {
      *existing = std::move(value);
      return;
    }
    if (!overflow_ && inline_size_ < kInlineCap) {
      inline_[inline_size_++] = Attr{name, std::move(value)};
      return;
    }
    if (!overflow_) {
      overflow_ = std::make_unique<std::vector<Attr>>();
      overflow_->reserve(kInlineCap * 2);
      for (std::size_t i = 0; i < inline_size_; ++i) {
        overflow_->push_back(std::move(inline_[i]));
        inline_[i] = Attr{};
      }
      inline_size_ = 0;
    }
    overflow_->push_back(Attr{name, std::move(value)});
  }

  void clear() {
    for (std::size_t i = 0; i < inline_size_; ++i) inline_[i] = Attr{};
    inline_size_ = 0;
    overflow_.reset();
  }

 private:
  void copy_from(const AttrList& other) {
    if (other.overflow_) {
      overflow_ = std::make_unique<std::vector<Attr>>(*other.overflow_);
    } else {
      for (std::size_t i = 0; i < other.inline_size_; ++i) {
        inline_[i] = other.inline_[i];
      }
      inline_size_ = other.inline_size_;
    }
  }

  Attr inline_[kInlineCap];
  std::uint32_t inline_size_ = 0;
  std::unique_ptr<std::vector<Attr>> overflow_;
};

struct Notification {
  util::Symbol topic;
  AttrList attributes;
  /// Node the publisher runs on (kNoNode for in-process publishers).
  sim::NodeId source_node = sim::kNoNode;
  /// Publish timestamp (filled by the bus).
  SimTime published;
  /// Approximate wire size of the encoded notification; the simulated bus
  /// uses it to derive delivery delay under congestion.
  DataSize wire_size = DataSize::bytes(1024);

  Notification() = default;
  Notification(util::Symbol topic_) : topic(topic_) {}            // NOLINT
  Notification(std::string_view topic_)                           // NOLINT
      : topic(util::Symbol::intern(topic_)) {}

  Notification& set(util::Symbol name, Value value) {
    attributes.set(name, std::move(value));
    return *this;
  }
  Notification& set(std::string_view name, Value value) {
    return set(util::Symbol::intern(name), std::move(value));
  }

  bool has(util::Symbol name) const {
    return attributes.find(name) != nullptr;
  }
  bool has(std::string_view name) const {
    return has(util::Symbol::intern(name));
  }

  /// Attribute access without copying: pointer to the value, or nullptr
  /// when absent. The hot-path accessor — gauges and report parsing read
  /// through this.
  const Value* get_if(util::Symbol name) const { return attributes.find(name); }
  const Value* get_if(std::string_view name) const {
    return get_if(util::Symbol::intern(name));
  }

  /// Attribute access; throws std::out_of_range when missing.
  const Value& get(util::Symbol name) const {
    if (const Value* v = attributes.find(name)) return *v;
    throw std::out_of_range("notification attribute missing: " + name.str());
  }
  const Value& get(std::string_view name) const {
    return get(util::Symbol::intern(name));
  }

  /// Attribute access with fallback. Returns a copy by necessity (the
  /// fallback is a temporary); prefer get_if on hot paths.
  Value get_or(util::Symbol name, Value fallback) const {
    const Value* v = attributes.find(name);
    return v ? *v : fallback;
  }
  Value get_or(std::string_view name, Value fallback) const {
    return get_or(util::Symbol::intern(name), std::move(fallback));
  }
};

/// Shared delivery payload: every matched subscriber of a publish receives
/// the same immutable notification instance instead of a per-delivery copy.
using NotificationPtr = std::shared_ptr<const Notification>;

}  // namespace arcadia::events
