// A bus notification: a topic, a flat attribute map, and provenance
// (source node, publish time) used by the simulated bus to model delivery
// delay over the shared network.
#pragma once

#include <map>
#include <string>

#include "events/value.hpp"
#include "sim/network.hpp"
#include "util/units.hpp"

namespace arcadia::events {

struct Notification {
  std::string topic;
  std::map<std::string, Value> attributes;
  /// Node the publisher runs on (kNoNode for in-process publishers).
  sim::NodeId source_node = sim::kNoNode;
  /// Publish timestamp (filled by the bus).
  SimTime published;
  /// Approximate wire size of the encoded notification; the simulated bus
  /// uses it to derive delivery delay under congestion.
  DataSize wire_size = DataSize::bytes(1024);

  Notification() = default;
  Notification(std::string topic_) : topic(std::move(topic_)) {}  // NOLINT

  Notification& set(const std::string& name, Value value) {
    attributes[name] = std::move(value);
    return *this;
  }
  bool has(const std::string& name) const { return attributes.count(name) > 0; }
  /// Attribute access; throws std::out_of_range when missing.
  const Value& get(const std::string& name) const { return attributes.at(name); }
  /// Attribute access with fallback.
  Value get_or(const std::string& name, Value fallback) const {
    auto it = attributes.find(name);
    return it == attributes.end() ? fallback : it->second;
  }
};

}  // namespace arcadia::events
