// Typed attribute values carried in bus notifications. Siena's data model:
// notifications are flat sets of named, typed attributes; filters constrain
// them. Numeric comparisons coerce int<->double, mirroring Siena's
// behaviour for numeric attribute types.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace arcadia::events {

class Value {
 public:
  Value() : v_(false) {}
  Value(bool b) : v_(b) {}                       // NOLINT(runtime/explicit)
  Value(std::int64_t i) : v_(i) {}               // NOLINT(runtime/explicit)
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : v_(d) {}                     // NOLINT(runtime/explicit)
  Value(std::string s) : v_(std::move(s)) {}     // NOLINT(runtime/explicit)
  Value(const char* s) : v_(std::string(s)) {}   // NOLINT(runtime/explicit)

  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  /// Numeric read with int->double coercion; throws std::bad_variant_access
  /// for non-numeric values.
  double as_double() const {
    if (is_int()) return static_cast<double>(as_int());
    return std::get<double>(v_);
  }

  /// Equality with numeric coercion (1 == 1.0); distinct non-numeric types
  /// are never equal.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Three-way ordering for filter range operators: numerics by value,
  /// strings lexicographically. Returns false via `ordered` for
  /// incomparable pairs (bool vs string, etc.).
  static bool compare(const Value& a, const Value& b, int& out_cmp);

  std::string to_string() const;

 private:
  std::variant<bool, std::int64_t, double, std::string> v_;
};

}  // namespace arcadia::events
