// Typed attribute values carried in bus notifications. Siena's data model:
// notifications are flat sets of named, typed attributes; filters constrain
// them. Numeric comparisons coerce int<->double, mirroring Siena's
// behaviour for numeric attribute types.
//
// Strings come in two flavours: an owned std::string for arbitrary payload
// text, and an interned util::Symbol for the names the monitoring stack
// repeats forever (client/element/property identifiers). A Symbol value is
// 4 bytes, never allocates, and compares by id against other symbols; it
// still reads, compares, and filters exactly like the string it interns.
// arclint: hotpath — steady-state code: no std::function (heap-owning
// type erasure); util::SmallFn, templates, or plain data only.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/symbol.hpp"

namespace arcadia::events {

class Value {
 public:
  Value() : v_(false) {}
  Value(bool b) : v_(b) {}                       // NOLINT(runtime/explicit)
  Value(std::int64_t i) : v_(i) {}               // NOLINT(runtime/explicit)
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : v_(d) {}                     // NOLINT(runtime/explicit)
  Value(std::string s) : v_(std::move(s)) {}     // NOLINT(runtime/explicit)
  Value(const char* s) : v_(std::string(s)) {}   // NOLINT(runtime/explicit)
  Value(util::Symbol s) : v_(s) {}               // NOLINT(runtime/explicit)

  // The special members are defined out-of-line: GCC 12's
  // -Wmaybe-uninitialized misfires on the inlined five-alternative variant
  // copy/move at call sites. The indirection is one call on paths that
  // already run a variant visit.
  Value(const Value& other);
  Value& operator=(const Value& other);
  Value(Value&& other) noexcept;
  Value& operator=(Value&& other) noexcept;
  ~Value();

  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  /// True for both owned strings and interned symbols: the two are the same
  /// logical type, differing only in storage.
  bool is_string() const {
    return std::holds_alternative<std::string>(v_) || is_symbol();
  }
  bool is_symbol() const { return std::holds_alternative<util::Symbol>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  /// String read; for a symbol, the interned text (stable for the process
  /// lifetime, so returning a reference is safe).
  const std::string& as_string() const {
    if (const auto* sym = std::get_if<util::Symbol>(&v_)) return sym->str();
    return std::get<std::string>(v_);
  }
  util::Symbol as_symbol() const { return std::get<util::Symbol>(v_); }
  /// The value as an interned symbol: identity for symbols, interns owned
  /// strings. Throws std::bad_variant_access for non-string values.
  util::Symbol to_symbol() const {
    if (const auto* sym = std::get_if<util::Symbol>(&v_)) return *sym;
    return util::Symbol::intern(std::get<std::string>(v_));
  }
  /// Numeric read with int->double coercion; throws std::bad_variant_access
  /// for non-numeric values.
  double as_double() const {
    if (is_int()) return static_cast<double>(as_int());
    return std::get<double>(v_);
  }

  /// Equality with numeric coercion (1 == 1.0); symbols and strings compare
  /// by text (two symbols by id — same thing, interning is idempotent);
  /// distinct non-numeric types are never equal.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Three-way ordering for filter range operators: numerics by value,
  /// strings lexicographically. Returns false via `ordered` for
  /// incomparable pairs (bool vs string, etc.).
  static bool compare(const Value& a, const Value& b, int& out_cmp);

  std::string to_string() const;

 private:
  std::variant<bool, std::int64_t, double, util::Symbol, std::string> v_;
};

}  // namespace arcadia::events
