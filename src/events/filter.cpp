#include "events/filter.hpp"

namespace arcadia::events {

const char* to_string(Op op) {
  switch (op) {
    case Op::Eq: return "==";
    case Op::Ne: return "!=";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::Exists: return "exists";
    case Op::Prefix: return "prefix";
    case Op::Suffix: return "suffix";
    case Op::Contains: return "contains";
  }
  return "?";
}

void Filter::set_topic(std::string pattern) {
  topic_ = std::move(pattern);
  if (topic_.empty()) {
    kind_ = TopicKind::Any;
  } else if (topic_.back() == '*') {
    kind_ = TopicKind::Prefix;
  } else {
    kind_ = TopicKind::Exact;
    topic_sym_ = util::Symbol::intern(topic_);
  }
}

bool Filter::matches(const Notification& n) const {
  switch (kind_) {
    case TopicKind::Any:
      break;
    case TopicKind::Exact:
      if (n.topic != topic_sym_) return false;
      break;
    case TopicKind::Prefix: {
      const std::string_view prefix(topic_.data(), topic_.size() - 1);
      if (n.topic.view().substr(0, prefix.size()) != prefix) return false;
      break;
    }
  }
  return matches_constraints(n);
}

bool Filter::matches_constraints(const Notification& n) const {
  for (const auto& c : constraints_) {
    if (!match_constraint(c, n)) return false;
  }
  return true;
}

bool Filter::match_constraint(const AttrConstraint& c, const Notification& n) {
  const Value* v = n.attributes.find(c.name);
  if (!v) return false;
  switch (c.op) {
    case Op::Exists:
      return true;
    // Symbol-vs-symbol equality is one integer compare — the dominant case
    // (gauge filters and probe attributes are both interned) never reaches
    // the out-of-line variant comparison.
    case Op::Eq:
      if (v->is_symbol() && c.value.is_symbol()) {
        return v->as_symbol() == c.value.as_symbol();
      }
      return *v == c.value;
    case Op::Ne:
      if (v->is_symbol() && c.value.is_symbol()) {
        return v->as_symbol() != c.value.as_symbol();
      }
      return *v != c.value;
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      int cmp = 0;
      if (!Value::compare(*v, c.value, cmp)) return false;
      switch (c.op) {
        case Op::Lt: return cmp < 0;
        case Op::Le: return cmp <= 0;
        case Op::Gt: return cmp > 0;
        default: return cmp >= 0;
      }
    }
    case Op::Prefix: {
      if (!v->is_string() || !c.value.is_string()) return false;
      const auto& s = v->as_string();
      const auto& p = c.value.as_string();
      return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
    }
    case Op::Suffix: {
      if (!v->is_string() || !c.value.is_string()) return false;
      const auto& s = v->as_string();
      const auto& p = c.value.as_string();
      return s.size() >= p.size() &&
             s.compare(s.size() - p.size(), p.size(), p) == 0;
    }
    case Op::Contains: {
      if (!v->is_string() || !c.value.is_string()) return false;
      return v->as_string().find(c.value.as_string()) != std::string::npos;
    }
  }
  return false;
}

}  // namespace arcadia::events
