#include "events/filter.hpp"

namespace arcadia::events {

const char* to_string(Op op) {
  switch (op) {
    case Op::Eq: return "==";
    case Op::Ne: return "!=";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::Exists: return "exists";
    case Op::Prefix: return "prefix";
    case Op::Suffix: return "suffix";
    case Op::Contains: return "contains";
  }
  return "?";
}

bool Filter::matches(const Notification& n) const {
  if (!topic_.empty()) {
    if (!topic_.empty() && topic_.back() == '*') {
      const std::string prefix = topic_.substr(0, topic_.size() - 1);
      if (n.topic.compare(0, prefix.size(), prefix) != 0) return false;
    } else if (n.topic != topic_) {
      return false;
    }
  }
  for (const auto& c : constraints_) {
    if (!match_constraint(c, n)) return false;
  }
  return true;
}

bool Filter::match_constraint(const AttrConstraint& c, const Notification& n) {
  auto it = n.attributes.find(c.name);
  if (it == n.attributes.end()) return false;
  const Value& v = it->second;
  switch (c.op) {
    case Op::Exists:
      return true;
    case Op::Eq:
      return v == c.value;
    case Op::Ne:
      return v != c.value;
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      int cmp = 0;
      if (!Value::compare(v, c.value, cmp)) return false;
      switch (c.op) {
        case Op::Lt: return cmp < 0;
        case Op::Le: return cmp <= 0;
        case Op::Gt: return cmp > 0;
        default: return cmp >= 0;
      }
    }
    case Op::Prefix: {
      if (!v.is_string() || !c.value.is_string()) return false;
      const auto& s = v.as_string();
      const auto& p = c.value.as_string();
      return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
    }
    case Op::Suffix: {
      if (!v.is_string() || !c.value.is_string()) return false;
      const auto& s = v.as_string();
      const auto& p = c.value.as_string();
      return s.size() >= p.size() &&
             s.compare(s.size() - p.size(), p.size(), p) == 0;
    }
    case Op::Contains: {
      if (!v.is_string() || !c.value.is_string()) return false;
      return v.as_string().find(c.value.as_string()) != std::string::npos;
    }
  }
  return false;
}

}  // namespace arcadia::events
