// The queries repair strategies pose to the running system (the paper's
// Section 3.3: "The next operation queries the state of the running
// system"). The runtime layer implements this against the environment
// manager and Remos; tests implement it with stubs.
//
// Every query accumulates its modeled latency (e.g. a cold Remos query
// costs minutes, a cached one milliseconds); the repair engine drains the
// accumulator and charges it to the repair's duration.
#pragma once

#include <optional>
#include <string>

#include "util/units.hpp"

namespace arcadia::repair {

class RuntimeQueries {
 public:
  virtual ~RuntimeQueries() = default;

  /// findGoodSGrp(cl, bw): the server group with the best available
  /// bandwidth (above `min_bw`) to the client; nullopt when none qualifies.
  virtual std::optional<std::string> find_good_sgrp(const std::string& client,
                                                    Bandwidth min_bw) = 0;

  /// A spare (inactive) server that could join `group`, with at least
  /// `min_bw` to the group's clients — Table 1's findServer. Returns the
  /// server's name.
  virtual std::optional<std::string> find_spare_server(
      const std::string& group, Bandwidth min_bw) = 0;

  /// The least-loaded server group other than `exclude` whose bandwidth to
  /// the client clears `min_bw` and whose queue is at least
  /// `improvement` requests shorter than `exclude`'s.
  virtual std::optional<std::string> find_less_loaded_sgrp(
      const std::string& client, const std::string& exclude, Bandwidth min_bw,
      double improvement) = 0;

  /// A dynamically-recruited (removable) server of `group`, if any.
  virtual std::optional<std::string> find_removable_server(
      const std::string& group) = 0;

  /// Modeled time spent in queries since the last drain.
  virtual SimTime drain_query_cost() = 0;
};

}  // namespace arcadia::repair
