// Architecture adaptation operators for the client-server style
// (Section 3.3): addServer, move, removeServer — plus the runtime-query
// functions repair scripts call (findGoodSGrp, findServer, ...). Operators
// mutate the model through the live transaction; the translator later maps
// the committed op records onto Table 1 runtime operations.
#pragma once

#include <string>

#include "acme/interpreter.hpp"
#include "repair/runtime_queries.hpp"

namespace arcadia::repair {

/// Conventions used when instantiating the client-server style; must match
/// how the framework builds the model.
struct StyleConventions {
  std::string request_port = "request";    ///< client port name
  std::string provide_port = "provide";    ///< server-group port name
  std::string client_role = "clientSide";  ///< connector role names
  std::string server_role = "serverSide";
  /// Property set on a client by move() so repairs journal the client (and
  /// the translator knows the new assignment).
  std::string bound_to_prop = "boundTo";
  /// Marker on dynamically recruited server components.
  std::string dynamic_prop = "dynamic";
};

struct OperatorThresholds {
  Bandwidth min_bandwidth = Bandwidth::kbps(10);
  /// Queue-length advantage required before a load-balancing move.
  double load_improvement = 2.0;
};

/// Register the style's operators and query functions on an interpreter.
/// `queries` may be null (model-only mode: addServer synthesizes names and
/// findGoodSGrp falls back to role-bandwidth properties).
void register_client_server_ops(acme::Interpreter& interp,
                                const model::System& system,
                                RuntimeQueries* queries,
                                StyleConventions conventions = {},
                                OperatorThresholds thresholds = {});

// ---- model navigation helpers shared by operators, native tactics, and
//      the architecture manager ----

/// The (single) connector the client's request port is attached to;
/// nullptr when unattached.
const model::Connector* client_connector(const model::System& system,
                                         const std::string& client,
                                         const StyleConventions& conv);

/// The server group currently serving `client`; empty when none.
std::string group_of_client(const model::System& system,
                            const std::string& client,
                            const StyleConventions& conv);

/// All server-group components connected to `client`.
std::vector<const model::Component*> groups_of_client(
    const model::System& system, const std::string& client,
    const StyleConventions& conv);

/// Perform the model half of move(client -> group) inside `txn`.
void perform_move(model::Transaction& txn, const model::System& system,
                  const std::string& client, const std::string& group,
                  const StyleConventions& conv);

/// Perform the model half of addServer(group, server_name) inside `txn`.
void perform_add_server(model::Transaction& txn, const model::System& system,
                        const std::string& group,
                        const std::string& server_name,
                        const StyleConventions& conv);

/// Perform the model half of removeServer(group, server_name) inside `txn`.
void perform_remove_server(model::Transaction& txn,
                           const model::System& system,
                           const std::string& group,
                           const std::string& server_name);

}  // namespace arcadia::repair
