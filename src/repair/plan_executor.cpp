#include "repair/plan_executor.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace arcadia::repair {

PlanExecutor::PlanExecutor(sim::Simulator& sim, Translator* translator,
                           monitor::GaugeManager* gauges)
    : sim_(sim), translator_(translator), gauges_(gauges) {}

void PlanExecutor::set_retry_policy(RetryPolicy policy) {
  retry_ = policy;
  jitter_rng_.reseed(retry_.jitter_seed);
}

void PlanExecutor::run(const AdaptationPlan* plan, Callbacks callbacks) {
  serial_.check();
  if (active_) throw Error("PlanExecutor::run: a plan is already in flight");
  plan_ = plan;
  cb_ = std::move(callbacks);
  const std::size_t n = plan_->steps.size();
  state_.assign(n, State::Pending);
  deps_left_.assign(n, 0);
  dependents_.assign(n, {});
  enacted_.clear();
  attempts_.assign(n, 0);
  completion_.assign(n, sim::EventHandle{});
  timeout_.assign(n, sim::EventHandle{});
  fault_stats_ = FaultStats{};
  done_ = 0;
  runtime_cost_ = SimTime::zero();
  saw_gauge_ = false;
  first_gauge_start_ = last_gauge_done_ = SimTime::zero();
  active_ = true;
  for (std::size_t i = 0; i < n; ++i) {
    deps_left_[i] = plan_->steps[i].deps.size();
    for (std::size_t d : plan_->steps[i].deps) dependents_[d].push_back(i);
  }
  if (n == 0) {
    const std::uint64_t gen = generation_;
    sim_.schedule_in(SimTime::zero(), [this, gen] {
      if (gen != generation_ || !active_) return;
      active_ = false;
      ++generation_;
      if (cb_.on_done) cb_.on_done();
    });
    return;
  }
  launch_ready();
}

void PlanExecutor::launch_ready() {
  // Completions always come back through the simulator (even zero-cost
  // steps), so this sweep never recurses into itself; launching in index
  // order keeps enactment deterministic.
  for (std::size_t i = 0; i < state_.size() && active_; ++i) {
    if (state_[i] == State::Pending && deps_left_[i] == 0) start_step(i);
  }
}

void PlanExecutor::start_step(std::size_t idx) {
  const PlanStep& step = plan_->steps[idx];
  state_[idx] = State::Running;
  const std::uint64_t gen = generation_;
  if (step.kind == PlanStep::Kind::RuntimeOps) {
    launch_runtime(idx);
    return;
  }
  // Gauge re-deployment: one batched reconfigure for the step's elements.
  if (!saw_gauge_) {
    saw_gauge_ = true;
    first_gauge_start_ = sim_.now();
  }
  auto completion = [this, gen, idx] {
    if (gen != generation_ || !active_) return;
    last_gauge_done_ = sim_.now();
    complete_step(idx);
  };
  if (gauges_) {
    gauges_->redeploy_elements(step.elements, completion);
  } else {
    sim_.schedule_in(SimTime::zero(), std::move(completion));
  }
}

void PlanExecutor::launch_runtime(std::size_t idx) {
  const PlanStep& step = plan_->steps[idx];
  const std::uint64_t gen = generation_;
  SimTime cost = SimTime::zero();
  ++attempts_[idx];
  // Enlist for compensation BEFORE applying: a throw partway through the
  // step's records (connectServer succeeded, activateServer did not)
  // must still be compensated. Inverting ops that never applied
  // over-compensates; the best-effort handling of the inverse stream
  // absorbs that, whereas skipping the step would leak the partial
  // runtime effects for good.
  enacted_.push_back(idx);
  if (translator_) {
    try {
      cost = translator_->apply(step.records);
    } catch (const OpError& e) {
      // Typed operator failure: the request failed atomically before any
      // record applied (the OpError contract), so this step needs no
      // compensation — and a Transient one is worth retrying.
      enacted_.pop_back();
      if (e.transient() && attempts_[idx] < retry_.max_attempts) {
        schedule_retry(idx);
        return;
      }
      fail_step(idx, e.what());
      return;
    } catch (const Error& e) {
      fail_step(idx, e.what());
      return;
    }
  }
  runtime_cost_ += cost;
  completion_[idx] = sim_.schedule_in(cost, [this, gen, idx] {
    if (gen != generation_ || !active_) return;
    timeout_[idx].cancel();
    complete_step(idx);
  });
  // Arm the per-op timeout only when it would fire before the completion:
  // a stalled operator (cost inflated past the deadline) gets rolled back
  // and retried instead of holding the plan hostage.
  if (translator_ && retry_.op_timeout > SimTime::zero() &&
      cost > retry_.op_timeout) {
    timeout_[idx] = sim_.schedule_in(retry_.op_timeout, [this, gen, idx] {
      if (gen != generation_ || !active_) return;
      time_out_step(idx);
    });
  }
}

void PlanExecutor::schedule_retry(std::size_t idx) {
  ++fault_stats_.ops_retried;
  const std::uint64_t gen = generation_;
  const SimTime delay = retry_.backoff(attempts_[idx], jitter_rng_);
  ARC_WARN << "plan step " << idx << " (" << plan_->steps[idx].label
           << ") failed transiently; retry " << attempts_[idx] << "/"
           << (retry_.max_attempts - 1) << " in " << delay.as_seconds()
           << "s";
  sim_.schedule_in(delay, [this, gen, idx] {
    if (gen != generation_ || !active_) return;
    launch_runtime(idx);
  });
}

void PlanExecutor::time_out_step(std::size_t idx) {
  ++fault_stats_.ops_timed_out;
  completion_[idx].cancel();
  ARC_WARN << "plan step " << idx << " (" << plan_->steps[idx].label
           << ") exceeded the per-op timeout ("
           << retry_.op_timeout.as_seconds() << "s); rolling back";
  rollback_step(idx);
  if (attempts_[idx] < retry_.max_attempts) {
    schedule_retry(idx);
    return;
  }
  fail_step(idx, "runtime step exceeded op_timeout; retry budget exhausted");
}

SimTime PlanExecutor::rollback_step(std::size_t idx) {
  // Undo just this step's records (newest first) — its ops applied, but
  // the operator never acknowledged within the deadline.
  auto it = std::find(enacted_.begin(), enacted_.end(), idx);
  if (it != enacted_.end()) enacted_.erase(it);
  if (!translator_) return SimTime::zero();
  std::vector<model::OpRecord> inverses;
  const std::vector<model::OpRecord>& records = plan_->steps[idx].records;
  for (auto op = records.rbegin(); op != records.rend(); ++op) {
    if (std::optional<model::OpRecord> inv = op->inverse()) {
      inverses.push_back(std::move(*inv));
    }
  }
  if (inverses.empty()) return SimTime::zero();
  try {
    const SimTime cost = translator_->apply(inverses);
    runtime_cost_ += cost;
    return cost;
  } catch (const Error& e) {
    ARC_ERROR << "step rollback failed at the runtime layer: " << e.what();
    return SimTime::zero();
  }
}

void PlanExecutor::complete_step(std::size_t idx) {
  state_[idx] = State::Done;
  ++done_;
  if (cb_.on_step_done) cb_.on_step_done(idx);
  for (std::size_t dep : dependents_[idx]) {
    if (deps_left_[dep] > 0) --deps_left_[dep];
  }
  if (done_ == state_.size()) {
    active_ = false;
    ++generation_;
    if (cb_.on_done) cb_.on_done();
    return;
  }
  launch_ready();
}

void PlanExecutor::fail_step(std::size_t idx, const std::string& reason) {
  ARC_ERROR << "plan step " << idx << " (" << plan_->steps[idx].label
            << ") failed at the runtime layer: " << reason;
  const SimTime comp = compensate_enacted();
  active_ = false;
  ++generation_;
  if (cb_.on_failed) cb_.on_failed(idx, reason, comp);
}

PlanExecutor::AbortResult PlanExecutor::abort() {
  serial_.check();
  AbortResult result;
  if (!active_) return result;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (state_[i] == State::Done) continue;
    // A Running runtime step has already applied its ops (it is in
    // enacted_); a Running gauge step is detached mid-air.
    if (state_[i] == State::Running &&
        plan_->steps[i].kind == PlanStep::Kind::RuntimeOps) {
      continue;
    }
    ++result.steps_skipped;
  }
  result.steps_enacted = enacted_.size();
  result.compensation_cost = compensate_enacted();
  active_ = false;
  ++generation_;
  return result;
}

SimTime PlanExecutor::compensate_enacted() {
  if (enacted_.empty() || !translator_) return SimTime::zero();
  // One inverse stream, newest record first across the enacted steps — a
  // single translator application, mirroring how a rollback replays the
  // undo journal.
  std::vector<model::OpRecord> inverses;
  for (auto it = enacted_.rbegin(); it != enacted_.rend(); ++it) {
    const std::vector<model::OpRecord>& records = plan_->steps[*it].records;
    for (auto op = records.rbegin(); op != records.rend(); ++op) {
      if (std::optional<model::OpRecord> inv = op->inverse()) {
        inverses.push_back(std::move(*inv));
      }
    }
  }
  enacted_.clear();
  if (inverses.empty()) return SimTime::zero();
  try {
    const SimTime cost = translator_->apply(inverses);
    runtime_cost_ += cost;
    return cost;
  } catch (const Error& e) {
    // Compensation is best-effort: the runtime refused the inverse (e.g.
    // the server we would re-activate vanished). Surface it loudly; the
    // model-side revert still runs, and the consistency checker will flag
    // any residue.
    ARC_ERROR << "plan compensation failed at the runtime layer: " << e.what();
    return SimTime::zero();
  }
}

SimTime PlanExecutor::gauge_wall() const {
  if (!saw_gauge_) return SimTime::zero();
  return last_gauge_done_ - first_gauge_start_;
}

}  // namespace arcadia::repair
