#include "repair/registry.hpp"

#include "util/catalog.hpp"
#include "util/error.hpp"

namespace arcadia::repair {

StrategyRegistry::StrategyRegistry() {
  CxxStrategy fix = make_fix_latency_strategy();
  strategies_.emplace(fix.name, std::move(fix));
  CxxStrategy trim = make_trim_strategy();
  strategies_.emplace(trim.name, std::move(trim));
}

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry registry;
  return registry;
}

void StrategyRegistry::add(CxxStrategy strategy) {
  if (strategy.name.empty()) {
    throw Error("StrategyRegistry: empty strategy name");
  }
  util::MutexLock lock(mutex_);
  if (strategies_.count(strategy.name)) {
    throw Error("StrategyRegistry: strategy '" + strategy.name +
                "' already registered");
  }
  strategies_.emplace(strategy.name, std::move(strategy));
}

void StrategyRegistry::add_or_replace(CxxStrategy strategy) {
  if (strategy.name.empty()) {
    throw Error("StrategyRegistry: empty strategy name");
  }
  util::MutexLock lock(mutex_);
  strategies_[strategy.name] = std::move(strategy);
}

bool StrategyRegistry::contains(const std::string& name) const {
  util::MutexLock lock(mutex_);
  return strategies_.count(name) > 0;
}

CxxStrategy StrategyRegistry::at(const std::string& name) const {
  util::MutexLock lock(mutex_);
  auto it = strategies_.find(name);
  if (it == strategies_.end()) {
    throw Error("StrategyRegistry: unknown strategy '" + name +
                "' (catalog:" + catalog_of(strategies_) + ")");
  }
  return it->second;
}

std::vector<std::string> StrategyRegistry::names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(strategies_.size());
  for (const auto& [key, value] : strategies_) out.push_back(key);
  return out;
}

PolicyRegistry::PolicyRegistry() {
  policies_["first-reported"] =
      [](const std::vector<const Violation*>&) -> std::size_t { return 0; };
  policies_["worst-first"] =
      [](const std::vector<const Violation*>& candidates) -> std::size_t {
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (candidates[i]->observed > candidates[best]->observed) best = i;
    }
    return best;
  };
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::add(std::string name, ViolationChooser chooser) {
  if (name.empty()) throw Error("PolicyRegistry: empty policy name");
  if (!chooser) throw Error("PolicyRegistry: policy '" + name + "' is null");
  util::MutexLock lock(mutex_);
  if (policies_.count(name)) {
    throw Error("PolicyRegistry: policy '" + name + "' already registered");
  }
  policies_.emplace(std::move(name), std::move(chooser));
}

void PolicyRegistry::add_or_replace(std::string name, ViolationChooser chooser) {
  if (name.empty()) throw Error("PolicyRegistry: empty policy name");
  if (!chooser) throw Error("PolicyRegistry: policy '" + name + "' is null");
  util::MutexLock lock(mutex_);
  policies_[std::move(name)] = std::move(chooser);
}

bool PolicyRegistry::contains(const std::string& name) const {
  util::MutexLock lock(mutex_);
  return policies_.count(name) > 0;
}

ViolationChooser PolicyRegistry::at(const std::string& name) const {
  util::MutexLock lock(mutex_);
  auto it = policies_.find(name);
  if (it == policies_.end()) {
    throw Error("PolicyRegistry: unknown policy '" + name +
                "' (catalog:" + catalog_of(policies_) + ")");
  }
  return it->second;
}

std::vector<std::string> PolicyRegistry::names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(policies_.size());
  for (const auto& [key, value] : policies_) out.push_back(key);
  return out;
}

}  // namespace arcadia::repair
