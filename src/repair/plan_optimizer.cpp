#include "repair/plan_optimizer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace arcadia::repair {

namespace {

bool is_move(const PlanStep& step) {
  return step.kind == PlanStep::Kind::RuntimeOps &&
         step.op_class == PlanStep::OpClass::Move;
}

/// Remove the steps marked in `drop`, remapping dependencies. A dependency
/// on a dropped step is replaced by that step's own dependencies
/// (transitively), preserving every ordering constraint that flowed
/// through it.
void drop_steps(AdaptationPlan& plan, const std::vector<bool>& drop) {
  const std::size_t n = plan.steps.size();
  // Expand deps bottom-up: deps only point at lower indices, so by the
  // time step i is expanded every dropped dep already routes around its
  // own dropped deps.
  std::vector<std::vector<std::size_t>> expanded(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t> deps;
    for (std::size_t d : plan.steps[i].deps) {
      if (drop[d]) {
        deps.insert(expanded[d].begin(), expanded[d].end());
      } else {
        deps.insert(d);
      }
    }
    expanded[i].assign(deps.begin(), deps.end());
  }
  std::vector<std::size_t> remap(n, 0);
  std::vector<PlanStep> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (drop[i]) continue;
    remap[i] = kept.size();
    PlanStep step = std::move(plan.steps[i]);
    step.deps.clear();
    for (std::size_t d : expanded[i]) step.deps.push_back(remap[d]);
    kept.push_back(std::move(step));
  }
  plan.steps = std::move(kept);
}

/// The boundTo record of a move step — the planner marked it at lift time,
/// so bookkeeping SetProperty records riding in the same step can never be
/// mistaken for it.
model::OpRecord* bound_to_record(PlanStep& step) {
  if (step.effective_record == PlanStep::kNoEffective ||
      step.effective_record >= step.records.size()) {
    return nullptr;
  }
  model::OpRecord* op = &step.records[step.effective_record];
  return op->kind == model::OpKind::SetProperty ? op : nullptr;
}

std::uint64_t pass_merge_moves(AdaptationPlan& plan) {
  // Last binding per client wins; earlier move steps of the same client
  // are dropped from enactment.
  std::map<std::string, std::size_t> first_move;  // client -> step index
  std::map<std::string, std::size_t> last_move;
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    if (!is_move(plan.steps[i])) continue;
    first_move.try_emplace(plan.steps[i].subject, i);
    last_move[plan.steps[i].subject] = i;
  }
  std::vector<bool> drop(plan.steps.size(), false);
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    if (is_move(plan.steps[i]) && last_move[plan.steps[i].subject] != i) {
      drop[i] = true;
      ++dropped;
    }
  }
  if (!dropped) return 0;
  // The surviving step's compensation metadata must point at the client's
  // *pre-plan* binding, not the intermediate hop: the dropped moves are
  // never enacted, so the runtime goes straight from the original group to
  // the final one, and an abort must send it straight back.
  for (const auto& [client, last] : last_move) {
    const std::size_t first = first_move[client];
    if (first == last) continue;
    model::OpRecord* kept = bound_to_record(plan.steps[last]);
    model::OpRecord* original = bound_to_record(plan.steps[first]);
    if (kept && original) {
      kept->prev_value = original->prev_value;
      kept->had_prev = original->had_prev;
    }
  }
  drop_steps(plan, drop);
  return dropped;
}

std::uint64_t pass_batch_gauges(AdaptationPlan& plan) {
  // Gauge steps keyed by their (sorted) dependency set; same frontier =>
  // one batched reconfigure. Nothing ever depends on a gauge step, so
  // merging them needs no dependents rewiring — but indices still shift,
  // so reuse drop_steps for the removal.
  std::map<std::vector<std::size_t>, std::size_t> frontier;  // deps -> step
  std::vector<bool> drop(plan.steps.size(), false);
  std::uint64_t folded = 0;
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    PlanStep& step = plan.steps[i];
    if (step.kind != PlanStep::Kind::GaugeRedeploy) continue;
    std::vector<std::size_t> key = step.deps;
    std::sort(key.begin(), key.end());
    auto [it, fresh] = frontier.try_emplace(std::move(key), i);
    if (fresh) continue;
    PlanStep& host = plan.steps[it->second];
    for (std::string& element : step.elements) {
      host.elements.push_back(std::move(element));
    }
    // Batched elements redeploy concurrently: the step costs the slowest.
    host.estimated_cost = std::max(host.estimated_cost, step.estimated_cost);
    host.label = "gauges[" + std::to_string(host.elements.size()) + "]";
    drop[i] = true;
    ++folded;
  }
  if (folded) drop_steps(plan, drop);
  return folded;
}

/// Operator name behind a runtime step's OpClass (the effect table is
/// keyed by style-operator name).
const char* step_operator(const PlanStep& step) {
  switch (step.op_class) {
    case PlanStep::OpClass::Move: return "move";
    case PlanStep::OpClass::Recruit: return "addServer";
    case PlanStep::OpClass::Release: return "removeServer";
    case PlanStep::OpClass::Replay: return "";
  }
  return "";
}

/// Server groups whose observed properties a runtime step influences: the
/// scope group of a recruit/release, and both the source and target group
/// of a move (load shifts off one onto the other).
std::set<std::string> step_groups(PlanStep& step) {
  std::set<std::string> groups;
  if (step.op_class == PlanStep::OpClass::Move) {
    if (const model::OpRecord* bound = bound_to_record(step)) {
      if (bound->value.is_string()) groups.insert(bound->value.as_string());
      if (bound->had_prev && bound->prev_value.is_string()) {
        groups.insert(bound->prev_value.as_string());
      }
    }
    return groups;
  }
  if (step.effective_record != PlanStep::kNoEffective &&
      step.effective_record < step.records.size()) {
    const model::OpRecord& op = step.records[step.effective_record];
    if (!op.scope.empty()) groups.insert(op.scope.back());
  }
  return groups;
}

bool reaches(const AdaptationPlan& plan, std::size_t from, std::size_t to) {
  // deps point strictly downward, so walk them depth-first from `from`.
  std::vector<std::size_t> stack{from};
  std::set<std::size_t> seen;
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    if (cur == to) return true;
    if (!seen.insert(cur).second) continue;
    for (std::size_t d : plan.steps[cur].deps) {
      if (d >= to) stack.push_back(d);
    }
  }
  return false;
}

std::uint64_t pass_effect_deps(AdaptationPlan& plan,
                               const acme::EffectTable& table) {
  struct StepFx {
    std::set<std::string> groups;
    const acme::OperatorEffect* effect = nullptr;
  };
  std::vector<StepFx> fx(plan.steps.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    PlanStep& step = plan.steps[i];
    if (step.kind != PlanStep::Kind::RuntimeOps) continue;
    const char* op = step_operator(step);
    if (*op == '\0') continue;
    fx[i].effect = table.find(op);
    if (fx[i].effect) fx[i].groups = step_groups(step);
  }
  std::uint64_t added = 0;
  for (std::size_t j = 1; j < plan.steps.size(); ++j) {
    if (!fx[j].effect) continue;
    for (std::size_t i = 0; i < j; ++i) {
      if (!fx[i].effect) continue;
      bool shared_group = false;
      for (const std::string& g : fx[j].groups) {
        if (fx[i].groups.count(g) != 0) {
          shared_group = true;
          break;
        }
      }
      if (!shared_group) continue;
      bool shared_influence = false;
      for (const auto& [prop, dir] : fx[j].effect->influences) {
        (void)dir;
        if (fx[i].effect->influences.count(prop) != 0) {
          shared_influence = true;
          break;
        }
      }
      if (!shared_influence) continue;
      if (reaches(plan, j, i)) continue;  // already ordered
      plan.steps[j].deps.push_back(i);
      ++added;
    }
  }
  return added;
}

}  // namespace

PlanOptimizerStats optimize_plan(AdaptationPlan& plan,
                                 const acme::EffectTable* effects) {
  PlanOptimizerStats stats;
  if (effects) stats.effect_edges = pass_effect_deps(plan, *effects);
  stats.moves_merged = pass_merge_moves(plan);
  stats.gauges_batched = pass_batch_gauges(plan);
  return stats;
}

}  // namespace arcadia::repair
