// The repair engine: turns constraint violations into executed repairs.
//
// Lifecycle of one repair (Section 3.2 / 3.3 and the timing observations
// of Section 5.3):
//   1. pick a violation (policy: first-reported, as the paper's experiment
//      did, or worst-first, the smarter scheme its future work proposes);
//   2. run the bound strategy inside a model Transaction (interpreted
//      script or native C++ strategy);
//   3. on commit: charge decision + runtime-query time, then enact. The
//      default pipeline lifts the committed op records into an
//      AdaptationPlan (repair/plan.hpp), optimizes it (merged moves,
//      batched gauge re-deployments), and enacts it asynchronously with
//      independent steps overlapped (repair/plan_executor.hpp). The
//      paper's strictly sequential record replay — translate every record,
//      then re-deploy each element's gauges one after another, the step
//      that dominates its ~30 s repair time — is kept behind
//      `use_plan = false` as the measured baseline;
//   4. on abort: roll the transaction back and apply a cooldown so a
//      hopeless constraint does not spin.
//
// While a repair is in flight, and for settle_time afterwards on the
// affected elements, new violations are suppressed — the paper's "effects
// of a repair on a system will take time ... without taking this effect
// into account, unnecessary repairs are likely to occur". Detection keeps
// running while a plan enacts, and with `preemption` enabled a strictly
// worse violation somewhere else aborts the running plan: remaining steps
// are skipped and compensations from the transaction journal bring model
// and runtime back to their pre-repair state before the new repair starts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "acme/effects.hpp"
#include "acme/interpreter.hpp"
#include "acme/script.hpp"
#include "durability/sink.hpp"
#include "events/bus.hpp"
#include "model/transaction.hpp"
#include "monitor/gauge_manager.hpp"
#include "repair/constraint.hpp"
#include "repair/plan.hpp"
#include "repair/plan_executor.hpp"
#include "repair/runtime_queries.hpp"
#include "repair/strategy.hpp"
#include "sim/simulator.hpp"
#include "util/symbol.hpp"

namespace arcadia::repair {

enum class ViolationPolicy {
  FirstReported,  ///< the paper's experiment
  WorstFirst,     ///< fix the client experiencing the worst value first
};

struct RepairEngineConfig {
  ViolationPolicy policy = ViolationPolicy::FirstReported;
  /// Registry name of the violation policy (PolicyRegistry); overrides the
  /// `policy` enum when non-empty. Built-ins: "first-reported",
  /// "worst-first".
  std::string policy_name;
  /// Strategy-evaluation cost charged before runtime ops.
  SimTime decision_cost = SimTime::millis(100);
  /// Per-element suppression after a repair completes.
  SimTime settle_time = SimTime::seconds(30);
  /// Per-constraint suppression after an aborted repair.
  SimTime abort_cooldown = SimTime::seconds(60);
  /// Disable to reproduce undamped oscillation (ablation).
  bool damping = true;
  /// true: interpreted script strategies; false: native C++ strategies.
  bool use_script = true;
  /// Enact through the AdaptationPlan pipeline (lift, optimize, overlap).
  /// false selects the legacy strictly-sequential record replay — kept as
  /// the in-bench baseline for bench_fig11_repair_latency.
  bool use_plan = true;
  /// Allow a strictly worse violation to abort a plan in flight (remaining
  /// steps skipped, enacted steps compensated) and start its own repair.
  bool preemption = false;
  /// "Strictly worse": the challenger's observed value must exceed the
  /// active repair's by this factor. Observed values are compared raw and
  /// assume higher-is-worse threshold readings; repairs whose violation
  /// observed 0 (non-threshold constraints, idle-group utilization) are
  /// never preempted — their severity is not comparable. The heuristic is
  /// sharpest between violations of the same constraint kind (latency vs
  /// latency) — exactly the mid-repair-fault case the churn-mid-repair
  /// scenario exercises.
  double preempt_factor = 2.0;
  /// Failure-aware enactment: bounded retries with deterministic
  /// exponential backoff for transient runtime-op faults, and per-op
  /// timeouts — applied by the PlanExecutor ahead of the compensation /
  /// abort path above. The defaults retry; set max_attempts = 1 to make
  /// every op fault terminal (the pre-fault-plane behaviour).
  RetryPolicy retry;

  // Task-layer thresholds, mirrored into script globals and native
  // tactic contexts.
  double max_server_load = 6.0;
  Bandwidth min_bandwidth = Bandwidth::kbps(10);
  double min_utilization = 0.2;
  std::int64_t min_replicas = 2;
  double load_improvement = 2.0;

  StyleConventions conventions;
};

struct RepairRecord {
  std::uint64_t id = 0;
  std::string constraint_id;
  std::string element;
  std::string strategy;
  SimTime started;
  SimTime completed;
  bool committed = false;
  bool aborted = false;
  bool finished = false;
  /// The plan was aborted mid-flight by a strictly worse violation.
  bool preempted = false;
  std::string abort_reason;
  std::vector<std::pair<std::string, bool>> tactics;
  /// Per-tactic journal windows (committed repairs only): which slice of
  /// `journal` each executed tactic produced. Feeds the static-analysis
  /// soundness oracle (every op must fall inside its tactic's inferred
  /// write set).
  std::vector<acme::TacticSpan> tactic_spans;
  /// The committed op records, in journal order (empty for aborts).
  std::vector<model::OpRecord> journal;
  std::vector<std::string> ops;
  SimTime decision_cost;
  SimTime query_cost;
  SimTime op_cost;
  SimTime gauge_cost;
  int moves = 0;
  int servers_added = 0;
  int servers_removed = 0;
  /// Plan pipeline: steps after optimization / steps the optimizer folded
  /// away (0 on the legacy path).
  int plan_steps = 0;
  int plan_steps_merged = 0;
  /// Failure-aware enactment: transient-op retries and op timeouts this
  /// repair absorbed before reaching its verdict.
  int ops_retried = 0;
  int ops_timed_out = 0;

  SimTime duration() const { return completed - started; }
};

struct RepairStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t moves = 0;
  std::uint64_t servers_added = 0;
  std::uint64_t servers_removed = 0;
  double repair_seconds_total = 0.0;
  // Plan pipeline counters.
  std::uint64_t plan_steps_executed = 0;
  std::uint64_t plan_steps_merged = 0;    ///< folded by the optimizer
  std::uint64_t plan_steps_preempted = 0; ///< skipped by plan aborts
  std::uint64_t plans_preempted = 0;
  // Failure-aware enactment counters.
  std::uint64_t ops_retried = 0;     ///< transient-op retries, all repairs
  std::uint64_t ops_timed_out = 0;   ///< op-timeout rollbacks, all repairs
  std::uint64_t repairs_retried = 0; ///< repairs that needed >= 1 retry
};

class RepairEngine {
 public:
  /// `queries`, `translator`, and `gauges` may be null for model-only use
  /// (unit tests); costs they would contribute are then zero.
  RepairEngine(sim::Simulator& sim, model::System& root,
               const acme::Script& script, RuntimeQueries* queries,
               Translator* translator, monitor::GaugeManager* gauges,
               RepairEngineConfig config);

  /// Optional bus for plan lifecycle notifications (topics::kRepairPlan);
  /// the framework wires the gauge bus here so fleet managers and tools
  /// can observe repairs in flight.
  void set_event_bus(events::EventBus* bus) { bus_ = bus; }

  /// Optional write-ahead journal sink (durability plane). When set, every
  /// committed transaction (execute commit and compensation revert) and
  /// every plan lifecycle transition is journaled under `shard` before the
  /// runtime acts on it. Null = durability off, zero overhead.
  void set_journal_sink(durability::JournalSink* sink, std::uint32_t shard) {
    journal_sink_ = sink;
    journal_shard_ = shard;
  }

  /// Consider current violations; start at most one repair. While a plan
  /// is in flight this normally declines — unless preemption is enabled
  /// and a strictly worse violation (outside the elements the plan
  /// touches) wins the policy pick, in which case the running plan is
  /// aborted, compensated, and replaced. Returns true when a repair was
  /// initiated.
  bool handle_violations(const std::vector<Violation>& violations);

  bool busy() const { return busy_; }
  /// Element currently under repair or settling.
  bool suppressed(util::Symbol element) const;
  bool suppressed(const std::string& element) const {
    return suppressed(util::Symbol::intern(element));
  }
  bool constraint_cooling(util::Symbol constraint_id) const;
  bool constraint_cooling(const std::string& constraint_id) const {
    return constraint_cooling(util::Symbol::intern(constraint_id));
  }

  const std::vector<RepairRecord>& records() const { return records_; }
  const RepairStats& stats() const { return stats_; }
  /// (start, end) of committed repairs — the repair-duration bars of
  /// Figures 11-13. Maintained incrementally; cheap to call every sample.
  const std::vector<std::pair<SimTime, SimTime>>& repair_windows() const {
    return windows_;
  }

  acme::Interpreter& interpreter() { return interpreter_; }

  /// Instance-local strategy override: shadows the StrategyRegistry entry
  /// of the same name for this engine only.
  void add_strategy(CxxStrategy strategy);
  /// Native strategy names this engine can run (registry + local).
  std::vector<std::string> strategy_names() const;

 private:
  /// A committed plan in flight (or scheduled to start after the decision
  /// + query charge).
  struct ActiveRepair {
    std::size_t idx = 0;        ///< records_ index
    double observed = 0.0;      ///< severity of the repaired violation
    AdaptationPlan plan;
    std::vector<util::Symbol> touched;  ///< elements the plan acts on
    sim::EventHandle pre_event;         ///< pending start (decision charge)
  };

  void execute(const Violation& violation);
  acme::StrategyOutcome run_native(const std::string& handler,
                                   const std::string& element,
                                   model::Transaction& txn);
  // Plan pipeline.
  void start_plan(std::size_t idx);
  void finish_plan(std::size_t idx);
  void fail_plan(std::size_t idx, std::size_t step, const std::string& reason,
                 SimTime compensation_cost);
  void preempt_active(const std::string& reason);
  /// Fold the executor's per-plan retry/timeout counters into the record
  /// and the engine totals (called on every plan outcome).
  void note_fault_stats(RepairRecord& record);
  /// Shared bookkeeping for an in-flight plan abort (runtime failure,
  /// preemption): flags, stats, busy. `cooldown` applies the abort
  /// cooldown — preemption skips it, because the displaced repair was
  /// viable and should retry once the engine frees up (the strictly-worse
  /// factor already prevents the two repairs from thrashing).
  void abort_in_flight(std::size_t idx, const std::string& reason,
                       SimTime completed_at, bool cooldown);
  /// Replay the inverse of `journal` (newest first) through a fresh
  /// transaction, returning the model to its pre-plan state. `idx` is the
  /// repair whose plan is being compensated (journal tagging).
  void revert_model(const std::vector<model::OpRecord>& journal,
                    std::size_t idx);
  void publish_plan_event(util::Symbol phase, std::size_t idx,
                          std::size_t steps);
  bool touched_by_active(util::Symbol element) const;
  // Legacy record replay (use_plan = false).
  void apply_committed(std::size_t idx,
                       std::vector<model::OpRecord> op_records);
  void redeploy_chain(std::size_t idx,
                      std::shared_ptr<std::vector<std::string>> elements,
                      std::size_t next, SimTime gauge_started);
  void finish(std::size_t idx, const std::vector<std::string>& affected);
  static void summarize_ops(const std::vector<model::OpRecord>& op_records,
                            RepairRecord& record);

  sim::Simulator& sim_;
  model::System& root_;
  const acme::Script& script_;
  RuntimeQueries* queries_;
  Translator* translator_;
  monitor::GaugeManager* gauges_;
  RepairEngineConfig config_;
  acme::Interpreter interpreter_;
  /// Static operator footprints for the plan optimizer's effect-deps pass.
  acme::EffectTable effect_table_ = acme::make_client_server_effects();
  std::map<std::string, CxxStrategy> native_;
  std::function<std::size_t(const std::vector<const Violation*>&)> chooser_;
  events::EventBus* bus_ = nullptr;
  durability::JournalSink* journal_sink_ = nullptr;
  std::uint32_t journal_shard_ = 0;

  bool busy_ = false;
  PlanExecutor executor_;
  std::optional<ActiveRepair> active_;
  /// Extra enactment delay charged to the next repair started this instant
  /// — set by preempt_active to the compensation cost, so a challenger's
  /// plan waits for the displaced plan's inverse ops to clear the runtime.
  SimTime pending_start_delay_;
  util::SymbolMap<SimTime> settle_until_;    // element -> time
  util::SymbolMap<SimTime> cooldown_until_;  // constraint -> time
  std::vector<RepairRecord> records_;
  std::vector<std::pair<SimTime, SimTime>> windows_;
  RepairStats stats_;
};

}  // namespace arcadia::repair
