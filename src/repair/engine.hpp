// The repair engine: turns constraint violations into executed repairs.
//
// Lifecycle of one repair (Section 3.2 / 3.3 and the timing observations
// of Section 5.3):
//   1. pick a violation (policy: first-reported, as the paper's experiment
//      did, or worst-first, the smarter scheme its future work proposes);
//   2. run the bound strategy inside a model Transaction (interpreted
//      script or native C++ strategy);
//   3. on commit: charge decision + runtime-query time, hand the op records
//      to the translator (Table 1 operations, each with its RMI cost), then
//      re-deploy the gauges of every affected element — the step that
//      dominates the paper's ~30 s repair time;
//   4. on abort: roll the transaction back and apply a cooldown so a
//      hopeless constraint does not spin.
//
// While a repair is in flight, and for settle_time afterwards on the
// affected elements, new violations are suppressed — the paper's "effects
// of a repair on a system will take time ... without taking this effect
// into account, unnecessary repairs are likely to occur".
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "acme/interpreter.hpp"
#include "acme/script.hpp"
#include "model/transaction.hpp"
#include "monitor/gauge_manager.hpp"
#include "repair/constraint.hpp"
#include "repair/runtime_queries.hpp"
#include "repair/strategy.hpp"
#include "sim/simulator.hpp"
#include "util/symbol.hpp"

namespace arcadia::repair {

/// Maps committed model changes to runtime operations; implemented by the
/// runtime module against the environment manager.
class Translator {
 public:
  virtual ~Translator() = default;
  /// Apply the records to the running system; returns the modeled cost of
  /// the runtime operations performed.
  virtual SimTime apply(const std::vector<model::OpRecord>& records) = 0;
};

enum class ViolationPolicy {
  FirstReported,  ///< the paper's experiment
  WorstFirst,     ///< fix the client experiencing the worst value first
};

struct RepairEngineConfig {
  ViolationPolicy policy = ViolationPolicy::FirstReported;
  /// Registry name of the violation policy (PolicyRegistry); overrides the
  /// `policy` enum when non-empty. Built-ins: "first-reported",
  /// "worst-first".
  std::string policy_name;
  /// Strategy-evaluation cost charged before runtime ops.
  SimTime decision_cost = SimTime::millis(100);
  /// Per-element suppression after a repair completes.
  SimTime settle_time = SimTime::seconds(30);
  /// Per-constraint suppression after an aborted repair.
  SimTime abort_cooldown = SimTime::seconds(60);
  /// Disable to reproduce undamped oscillation (ablation).
  bool damping = true;
  /// true: interpreted script strategies; false: native C++ strategies.
  bool use_script = true;

  // Task-layer thresholds, mirrored into script globals and native
  // tactic contexts.
  double max_server_load = 6.0;
  Bandwidth min_bandwidth = Bandwidth::kbps(10);
  double min_utilization = 0.2;
  std::int64_t min_replicas = 2;
  double load_improvement = 2.0;

  StyleConventions conventions;
};

struct RepairRecord {
  std::uint64_t id = 0;
  std::string constraint_id;
  std::string element;
  std::string strategy;
  SimTime started;
  SimTime completed;
  bool committed = false;
  bool aborted = false;
  bool finished = false;
  std::string abort_reason;
  std::vector<std::pair<std::string, bool>> tactics;
  std::vector<std::string> ops;
  SimTime decision_cost;
  SimTime query_cost;
  SimTime op_cost;
  SimTime gauge_cost;
  int moves = 0;
  int servers_added = 0;
  int servers_removed = 0;

  SimTime duration() const { return completed - started; }
};

struct RepairStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t moves = 0;
  std::uint64_t servers_added = 0;
  std::uint64_t servers_removed = 0;
  double repair_seconds_total = 0.0;
};

class RepairEngine {
 public:
  /// `queries`, `translator`, and `gauges` may be null for model-only use
  /// (unit tests); costs they would contribute are then zero.
  RepairEngine(sim::Simulator& sim, model::System& root,
               const acme::Script& script, RuntimeQueries* queries,
               Translator* translator, monitor::GaugeManager* gauges,
               RepairEngineConfig config);

  /// Consider current violations; start at most one repair. Returns true
  /// when a repair was initiated.
  bool handle_violations(const std::vector<Violation>& violations);

  bool busy() const { return busy_; }
  /// Element currently under repair or settling.
  bool suppressed(util::Symbol element) const;
  bool suppressed(const std::string& element) const {
    return suppressed(util::Symbol::intern(element));
  }
  bool constraint_cooling(util::Symbol constraint_id) const;
  bool constraint_cooling(const std::string& constraint_id) const {
    return constraint_cooling(util::Symbol::intern(constraint_id));
  }

  const std::vector<RepairRecord>& records() const { return records_; }
  const RepairStats& stats() const { return stats_; }
  /// (start, end) of committed repairs — the repair-duration bars of
  /// Figures 11-13.
  std::vector<std::pair<SimTime, SimTime>> repair_windows() const;

  acme::Interpreter& interpreter() { return interpreter_; }

  /// Instance-local strategy override: shadows the StrategyRegistry entry
  /// of the same name for this engine only.
  void add_strategy(CxxStrategy strategy);
  /// Native strategy names this engine can run (registry + local).
  std::vector<std::string> strategy_names() const;

 private:
  void execute(const Violation& violation);
  acme::StrategyOutcome run_native(const std::string& handler,
                                   const std::string& element,
                                   model::Transaction& txn);
  void apply_committed(std::size_t idx,
                       std::vector<model::OpRecord> op_records);
  void redeploy_chain(std::size_t idx,
                      std::shared_ptr<std::vector<std::string>> elements,
                      std::size_t next, SimTime gauge_started);
  void finish(std::size_t idx, const std::vector<std::string>& affected);
  std::vector<std::string> affected_gauge_elements(
      const std::vector<model::OpRecord>& op_records) const;
  static void summarize_ops(const std::vector<model::OpRecord>& op_records,
                            RepairRecord& record);

  sim::Simulator& sim_;
  model::System& root_;
  const acme::Script& script_;
  RuntimeQueries* queries_;
  Translator* translator_;
  monitor::GaugeManager* gauges_;
  RepairEngineConfig config_;
  acme::Interpreter interpreter_;
  std::map<std::string, CxxStrategy> native_;
  std::function<std::size_t(const std::vector<const Violation*>&)> chooser_;

  bool busy_ = false;
  util::SymbolMap<SimTime> settle_until_;    // element -> time
  util::SymbolMap<SimTime> cooldown_until_;  // constraint -> time
  std::vector<RepairRecord> records_;
  RepairStats stats_;
};

}  // namespace arcadia::repair
