#include "repair/style_ops.hpp"

#include "model/types.hpp"
#include "util/log.hpp"

namespace arcadia::repair {

using acme::ElementRef;
using acme::EvalValue;

const model::Connector* client_connector(const model::System& system,
                                         const std::string& client,
                                         const StyleConventions& conv) {
  for (const model::Attachment& a : system.attachments()) {
    if (a.component == client && a.port == conv.request_port) {
      return &system.connector(a.connector);
    }
  }
  return nullptr;
}

std::string group_of_client(const model::System& system,
                            const std::string& client,
                            const StyleConventions& conv) {
  const model::Connector* conn = client_connector(system, client, conv);
  if (!conn) return "";
  for (const model::Attachment& a : system.attachments_on(conn->name())) {
    if (a.component != client && a.role == conv.server_role) {
      return a.component;
    }
  }
  return "";
}

std::vector<const model::Component*> groups_of_client(
    const model::System& system, const std::string& client,
    const StyleConventions& conv) {
  std::vector<const model::Component*> out;
  for (const model::Component* c : system.neighbors(client)) {
    if (c->type_name() == model::cs::kServerGroupT) out.push_back(c);
  }
  (void)conv;
  return out;
}

void perform_move(model::Transaction& txn, const model::System& system,
                  const std::string& client, const std::string& group,
                  const StyleConventions& conv) {
  const model::Connector* conn = client_connector(system, client, conv);
  if (!conn) {
    throw ModelError("move: client '" + client + "' has no connector");
  }
  const std::string old_group = group_of_client(system, client, conv);
  if (old_group == group) {
    throw ModelError("move: client '" + client + "' already on '" + group + "'");
  }
  if (!old_group.empty()) {
    txn.detach(model::Attachment{old_group, conv.provide_port, conn->name(),
                                 conv.server_role});
  }
  txn.attach(model::Attachment{group, conv.provide_port, conn->name(),
                               conv.server_role});
  // Journal the client itself so the repair engine knows whose monitoring
  // to re-deploy, and the translator knows the new assignment directly.
  txn.set_property({}, model::ElementKind::Component, client, "",
                   conv.bound_to_prop, model::PropertyValue(group));
}

void perform_add_server(model::Transaction& txn, const model::System& system,
                        const std::string& group,
                        const std::string& server_name,
                        const StyleConventions& conv) {
  const model::Component& grp = system.component(group);
  model::Component& server =
      txn.add_component({group}, server_name, model::cs::kServerT);
  server.set_property(model::cs::kPropIsActive, model::PropertyValue(true));
  server.set_property(conv.dynamic_prop, model::PropertyValue(true));
  const std::int64_t count =
      grp.property_or(model::cs::kPropReplication, model::PropertyValue(0))
          .as_int();
  txn.set_property({}, model::ElementKind::Component, group, "",
                   model::cs::kPropReplication,
                   model::PropertyValue(count + 1));
}

void perform_remove_server(model::Transaction& txn,
                           const model::System& system,
                           const std::string& group,
                           const std::string& server_name) {
  const model::Component& grp = system.component(group);
  txn.remove_component({group}, server_name);
  const std::int64_t count =
      grp.property_or(model::cs::kPropReplication, model::PropertyValue(0))
          .as_int();
  txn.set_property({}, model::ElementKind::Component, group, "",
                   model::cs::kPropReplication,
                   model::PropertyValue(count - 1));
}

namespace {

/// Model-only fallback used when no runtime is attached (unit tests,
/// model-layer demos): synthesize server names, read bandwidth from role
/// properties.
std::string synthesize_server_name(const model::System& system,
                                   const std::string& group) {
  const model::Component& grp = system.component(group);
  if (!grp.has_representation()) return group + "_srv1";
  const model::System& rep = grp.representation_const();
  for (int i = 1;; ++i) {
    std::string candidate = group + "_srv" + std::to_string(i);
    if (!rep.has_component(candidate)) return candidate;
  }
}

ElementRef group_ref(const model::System& system, const std::string& name) {
  return ElementRef::of_component(system, system.component(name));
}

}  // namespace

void register_client_server_ops(acme::Interpreter& interp,
                                const model::System& system,
                                RuntimeQueries* queries,
                                StyleConventions conventions,
                                OperatorThresholds thresholds) {
  const StyleConventions conv = conventions;
  const OperatorThresholds th = thresholds;
  const model::System* sys = &system;

  // --- operators (element methods) ---

  interp.register_operator(
      "addServer",
      [sys, queries, conv, th](const ElementRef& target,
                               std::vector<EvalValue>& args,
                               model::Transaction& txn) -> EvalValue {
        if (!args.empty()) throw ScriptError("addServer() takes no arguments");
        const std::string group = target.name();
        std::string server;
        if (queries) {
          auto found = queries->find_spare_server(group, th.min_bandwidth);
          if (!found) {
            ARC_DEBUG << "addServer(" << group << "): no spare server";
            return EvalValue(false);
          }
          server = *found;
        } else {
          server = synthesize_server_name(*sys, group);
        }
        perform_add_server(txn, *sys, group, server, conv);
        return EvalValue(true);
      });

  interp.register_operator(
      "move",
      [sys, conv](const ElementRef& target, std::vector<EvalValue>& args,
                  model::Transaction& txn) -> EvalValue {
        if (args.size() != 1) {
          throw ScriptError("move(toGroup) takes one argument");
        }
        const std::string client = target.name();
        const std::string group = args[0].as_element().name();
        perform_move(txn, *sys, client, group, conv);
        return EvalValue(true);
      });

  interp.register_operator(
      "removeServer",
      [sys, queries](const ElementRef& target, std::vector<EvalValue>& args,
                     model::Transaction& txn) -> EvalValue {
        if (!args.empty()) {
          throw ScriptError("removeServer() takes no arguments");
        }
        const std::string group = target.name();
        std::string victim;
        if (queries) {
          auto found = queries->find_removable_server(group);
          if (!found) return EvalValue(false);
          victim = *found;
        } else {
          const model::Component& grp = sys->component(group);
          if (!grp.has_representation()) return EvalValue(false);
          for (const model::Component* s :
               grp.representation_const().components()) {
            if (s->property_or("dynamic", model::PropertyValue(false)).is_bool() &&
                s->property_or("dynamic", model::PropertyValue(false)).as_bool()) {
              victim = s->name();
              break;
            }
          }
          if (victim.empty()) return EvalValue(false);
        }
        perform_remove_server(txn, *sys, group, victim);
        return EvalValue(true);
      });

  // --- query functions ---

  interp.register_function(
      "roleOf", [sys, conv](std::vector<EvalValue>& args,
                            acme::EvalContext&) -> EvalValue {
        if (args.size() != 1) throw ScriptError("roleOf(client) takes one argument");
        const std::string client = args[0].as_element().name();
        const model::Connector* conn = client_connector(*sys, client, conv);
        if (!conn) return EvalValue::nil();
        if (!conn->has_role(conv.client_role)) return EvalValue::nil();
        return EvalValue(
            ElementRef::of_role(*sys, *conn, conn->role(conv.client_role)));
      });

  interp.register_function(
      "findGoodSGrp",
      [sys, queries, conv](std::vector<EvalValue>& args,
                           acme::EvalContext&) -> EvalValue {
        if (args.size() != 2) {
          throw ScriptError("findGoodSGrp(client, minBandwidth) takes two arguments");
        }
        const std::string client = args[0].as_element().name();
        const Bandwidth min_bw = Bandwidth::bps(args[1].as_number());
        if (queries) {
          auto found = queries->find_good_sgrp(client, min_bw);
          if (!found || !sys->has_component(*found)) return EvalValue::nil();
          return EvalValue(group_ref(*sys, *found));
        }
        // Model-only fallback: any group the client is NOT on.
        const std::string current = group_of_client(*sys, client, conv);
        for (const model::Component* c : sys->components()) {
          if (c->type_name() == model::cs::kServerGroupT &&
              c->name() != current) {
            return EvalValue(group_ref(*sys, c->name()));
          }
        }
        return EvalValue::nil();
      });

  interp.register_function(
      "findLessLoadedSGrp",
      [sys, queries, conv, th](std::vector<EvalValue>& args,
                               acme::EvalContext&) -> EvalValue {
        if (args.size() != 2) {
          throw ScriptError(
              "findLessLoadedSGrp(client, excludeGroup) takes two arguments");
        }
        const std::string client = args[0].as_element().name();
        const std::string exclude = args[1].as_element().name();
        if (queries) {
          auto found = queries->find_less_loaded_sgrp(
              client, exclude, th.min_bandwidth, th.load_improvement);
          if (!found || !sys->has_component(*found)) return EvalValue::nil();
          return EvalValue(group_ref(*sys, *found));
        }
        // Model-only fallback: compare load properties.
        const model::Component& ex = sys->component(exclude);
        const double ex_load =
            ex.property_or(model::cs::kPropLoad, model::PropertyValue(0.0))
                .as_double();
        const model::Component* best = nullptr;
        double best_load = ex_load - th.load_improvement;
        for (const model::Component* c : sys->components()) {
          if (c->type_name() != model::cs::kServerGroupT || c->name() == exclude) {
            continue;
          }
          double load =
              c->property_or(model::cs::kPropLoad, model::PropertyValue(0.0))
                  .as_double();
          if (load < best_load) {
            best_load = load;
            best = c;
          }
        }
        return best ? EvalValue(group_ref(*sys, best->name())) : EvalValue::nil();
      });

  interp.register_function(
      "groupOf", [sys, conv](std::vector<EvalValue>& args,
                             acme::EvalContext&) -> EvalValue {
        if (args.size() != 1) throw ScriptError("groupOf(client) takes one argument");
        const std::string client = args[0].as_element().name();
        const std::string group = group_of_client(*sys, client, conv);
        if (group.empty()) return EvalValue::nil();
        return EvalValue(group_ref(*sys, group));
      });
}

}  // namespace arcadia::repair
