// Architectural constraints and their checker. The task layer supplies
// threshold properties ("average latency < maxLatency"); the checker
// evaluates each constraint against the live model and emits violations
// that trigger repair strategies (Section 3.2).
//
// Evaluation is incremental: the checker caches each constraint's last
// verdict and re-evaluates only when something it could have read changed,
// using the model's revision clocks (model/revision.hpp):
//   - "local" constraints (conditions built purely from literals, globals,
//     and the attached element's own properties — the paper's threshold
//     form) re-evaluate when that element's property stamp moves;
//   - "non-local" constraints (calls, member chains, quantifiers — anything
//     that can reach other elements) re-evaluate when any property in the
//     process changed;
//   - any structural edit or global rebinding falls back to a full sweep.
// A cached verdict is returned verbatim, so check() output is bit-for-bit
// what a full sweep would produce, in the same deterministic order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "acme/ast.hpp"
#include "acme/evaluator.hpp"
#include "model/system.hpp"
#include "util/symbol.hpp"

namespace arcadia::repair {

struct Constraint {
  std::string id;       ///< unique ("latency:User3")
  std::string element;  ///< component the constraint is attached to
  std::shared_ptr<acme::Expr> condition;  ///< must evaluate to true
  std::string handler;  ///< strategy invoked on violation (may be empty)
  std::string source;   ///< original Armani text (for reports)
  util::Symbol id_sym;       ///< interned `id` (set by the checker)
  util::Symbol element_sym;  ///< interned `element` (set by the checker)
};

struct Violation {
  const Constraint* constraint = nullptr;
  std::string element;
  /// Value of the left-hand property when the constraint is a simple
  /// threshold comparison; 0 otherwise. Used by the worst-first policy.
  double observed = 0.0;
};

class ConstraintChecker {
 public:
  explicit ConstraintChecker(const model::System& system);

  /// Global bindings visible in constraint expressions (task-layer
  /// thresholds such as maxServerLoad / minBandwidth / minUtilization).
  /// Invalidates every cached verdict.
  void bind_global(const std::string& name, acme::EvalValue value);

  /// Attach a parsed constraint to a specific element.
  void add_constraint(const std::string& id, const std::string& element,
                      const std::string& armani_source,
                      const std::string& handler);

  /// Instantiate a script's invariants over every component that carries
  /// all the properties the invariant mentions (unqualified names that are
  /// not global bindings). Returns the number of constraints created.
  std::size_t instantiate(const acme::Script& script);

  /// Evaluate everything that may have changed; returns current violations
  /// in a deterministic order (constraint insertion order, as always).
  std::vector<Violation> check() const;

  /// Evaluate one constraint (by id), bypassing the cache; true = satisfied.
  bool satisfied(const std::string& id) const;

  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Mark (or clear) an element whose monitoring evidence is suspect — its
  /// gauge channels went stale per the watchdog. While suspect, check()
  /// *holds* the element's verdicts: no violation is asserted for it and
  /// its memo is left untouched, so repairs neither trigger nor flap on
  /// data that may simply be missing. Clearing resumes normal evaluation.
  void set_element_suspect(util::Symbol element, bool suspect);
  bool element_suspect(util::Symbol element) const;
  std::size_t suspect_elements() const { return suspect_.size(); }

  /// Incremental-evaluation accounting (benches / tests).
  struct CheckStats {
    std::uint64_t sweeps = 0;       ///< check() calls
    std::uint64_t evaluations = 0;  ///< constraints actually re-evaluated
    std::uint64_t cache_hits = 0;   ///< constraints answered from cache
    std::uint64_t full_sweeps = 0;  ///< sweeps forced by structure/globals
    std::uint64_t holds = 0;        ///< verdicts held on suspect evidence
  };
  const CheckStats& check_stats() const { return check_stats_; }

 private:
  /// Per-constraint memo of the last evaluation.
  struct Memo {
    bool valid = false;
    bool satisfied = false;
    double observed = 0.0;
    /// Condition reads only literals, globals, and context-element
    /// properties (computed once per constraint).
    bool local = false;
    /// Property clock of the attached element when last evaluated.
    std::uint64_t element_stamp = 0;
  };

  bool eval_constraint(const Constraint& c, double* observed) const;
  void ensure_memos() const;

  const model::System& system_;
  acme::Evaluator evaluator_;
  util::SymbolMap<acme::EvalValue> globals_;
  std::vector<Constraint> constraints_;
  /// Elements under a verdict hold (set from the sim thread between
  /// sweeps; check() only reads it).
  util::SymbolMap<char> suspect_;

  mutable std::vector<Memo> memos_;
  /// Structure clock at the end of the previous sweep.
  mutable std::uint64_t structure_seen_ = 0;
  /// Property clock at the end of the previous sweep (non-local reuse).
  mutable std::uint64_t property_seen_ = 0;
  /// Bumped by bind_global; forces the next sweep to re-evaluate all.
  std::uint64_t globals_stamp_ = 1;
  mutable std::uint64_t globals_seen_ = 0;
  mutable CheckStats check_stats_;
};

/// Free unqualified names mentioned in an expression (helper exposed for
/// tests; used to decide which elements an invariant applies to).
std::vector<std::string> free_names(const acme::Expr& expr);

/// True when `expr` can only read literals, bound names, and unqualified
/// context-element properties — no calls, member chains, or comprehensions
/// that could reach other elements (exposed for tests).
bool expression_is_local(const acme::Expr& expr);

}  // namespace arcadia::repair
