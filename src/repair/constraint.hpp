// Architectural constraints and their checker. The task layer supplies
// threshold properties ("average latency < maxLatency"); the checker
// evaluates each constraint against the live model and emits violations
// that trigger repair strategies (Section 3.2).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "acme/ast.hpp"
#include "acme/evaluator.hpp"
#include "model/system.hpp"

namespace arcadia::repair {

struct Constraint {
  std::string id;       ///< unique ("latency:User3")
  std::string element;  ///< component the constraint is attached to
  std::shared_ptr<acme::Expr> condition;  ///< must evaluate to true
  std::string handler;  ///< strategy invoked on violation (may be empty)
  std::string source;   ///< original Armani text (for reports)
};

struct Violation {
  const Constraint* constraint = nullptr;
  std::string element;
  /// Value of the left-hand property when the constraint is a simple
  /// threshold comparison; 0 otherwise. Used by the worst-first policy.
  double observed = 0.0;
};

class ConstraintChecker {
 public:
  explicit ConstraintChecker(const model::System& system);

  /// Global bindings visible in constraint expressions (task-layer
  /// thresholds such as maxServerLoad / minBandwidth / minUtilization).
  void bind_global(const std::string& name, acme::EvalValue value);

  /// Attach a parsed constraint to a specific element.
  void add_constraint(const std::string& id, const std::string& element,
                      const std::string& armani_source,
                      const std::string& handler);

  /// Instantiate a script's invariants over every component that carries
  /// all the properties the invariant mentions (unqualified names that are
  /// not global bindings). Returns the number of constraints created.
  std::size_t instantiate(const acme::Script& script);

  /// Evaluate everything; returns current violations in a deterministic
  /// order (constraint id).
  std::vector<Violation> check() const;

  /// Evaluate one constraint (by id); true = satisfied.
  bool satisfied(const std::string& id) const;

  const std::vector<Constraint>& constraints() const { return constraints_; }

 private:
  bool eval_constraint(const Constraint& c, double* observed) const;

  const model::System& system_;
  acme::Evaluator evaluator_;
  std::map<std::string, acme::EvalValue> globals_;
  std::vector<Constraint> constraints_;
};

/// Free unqualified names mentioned in an expression (helper exposed for
/// tests; used to decide which elements an invariant applies to).
std::vector<std::string> free_names(const acme::Expr& expr);

}  // namespace arcadia::repair
