// String-keyed registries for the repair layer: native C++ repair
// strategies and violation-selection policies. Both are open catalogs —
// user code registers its own entries at start-up and selects them by name
// through RepairEngineConfig / FrameworkBuilder, instead of subclassing
// and rewiring the engine (see examples/custom_strategy.cpp).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "repair/constraint.hpp"
#include "repair/strategy.hpp"
#include "util/annotations.hpp"

namespace arcadia::repair {

/// Process-wide catalog of native repair strategies, keyed by
/// CxxStrategy::name. The built-ins (fixLatency, trimServers) register on
/// first access.
class StrategyRegistry {
 public:
  static StrategyRegistry& instance();

  /// Register a strategy; throws Error when the name is taken.
  void add(CxxStrategy strategy);
  /// Register or overwrite (e.g. swapping fixLatency for a variant).
  void add_or_replace(CxxStrategy strategy);

  bool contains(const std::string& name) const;
  /// Look up a strategy; throws Error listing the catalog when unknown.
  CxxStrategy at(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  StrategyRegistry();

  mutable util::Mutex mutex_;
  std::map<std::string, CxxStrategy> strategies_ ARC_GUARDED_BY(mutex_);
};

/// Picks which eligible violation to repair next. `candidates` is never
/// empty and already filtered (handlers bound, damping applied); return an
/// index into it, or candidates.size() to decline this round.
using ViolationChooser =
    std::function<std::size_t(const std::vector<const Violation*>& candidates)>;

/// Process-wide catalog of violation policies. Built-ins:
///   "first-reported"  the paper's experiment: repair whatever fired first
///   "worst-first"     repair the worst observed value (its future work)
class PolicyRegistry {
 public:
  static PolicyRegistry& instance();

  void add(std::string name, ViolationChooser chooser);
  void add_or_replace(std::string name, ViolationChooser chooser);

  bool contains(const std::string& name) const;
  ViolationChooser at(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  PolicyRegistry();

  mutable util::Mutex mutex_;
  std::map<std::string, ViolationChooser> policies_ ARC_GUARDED_BY(mutex_);
};

}  // namespace arcadia::repair
