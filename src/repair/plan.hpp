// The AdaptationPlan IR: the explicit, analyzable artifact between an
// architectural repair decision and its enactment. A strategy still runs
// in a model transaction; the committed OpRecord stream is then *lifted*
// into a small DAG of runtime steps — each carrying the op records it
// enacts, an estimated Table-1 cost, and explicit dependencies — plus
// gauge re-deployment steps for the monitoring the repair disturbs.
//
// The split buys three things the paper's sequential replay could not:
//   * optimization  — redundant moves merge, gauge re-deployments batch
//                     (repair/plan_optimizer.hpp);
//   * overlap       — independent steps enact concurrently, and detection
//                     keeps running while a plan is in flight
//                     (repair/plan_executor.hpp);
//   * preemption    — a half-enacted plan can abort: remaining steps are
//                     skipped and compensations (OpRecord::inverse from the
//                     transaction journal) bring model and runtime back to
//                     their pre-repair state.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/transaction.hpp"
#include "monitor/gauge_manager.hpp"
#include "repair/style_ops.hpp"
#include "util/units.hpp"

namespace arcadia::repair {

/// Maps committed model changes to runtime operations; implemented by the
/// runtime module against the environment manager.
class Translator {
 public:
  virtual ~Translator() = default;
  /// Apply the records to the running system; returns the modeled cost of
  /// the runtime operations performed.
  virtual SimTime apply(const std::vector<model::OpRecord>& records) = 0;
  /// Predicted cost of applying `records`, without touching the runtime —
  /// the planner's Table-1 estimate. Default: no cost model.
  virtual SimTime estimate(const std::vector<model::OpRecord>& records) const {
    (void)records;
    return SimTime::zero();
  }
};

struct PlanStep {
  enum class Kind {
    RuntimeOps,     ///< translate this step's op records to the runtime
    GaugeRedeploy,  ///< re-deploy the gauges of `elements` (batched)
  };
  Kind kind = Kind::RuntimeOps;
  /// What the step's effective op does at the runtime layer — set by the
  /// planner so optimizer passes reason about steps without re-deriving
  /// translator rules.
  enum class OpClass {
    Replay,   ///< no runtime-effective op (model-only bookkeeping)
    Move,     ///< re-bind `subject` (a client) to another group
    Recruit,  ///< connect + activate `subject` (a server) in a group
    Release,  ///< deactivate `subject`
  };
  OpClass op_class = OpClass::Replay;
  /// The element the effective op acts on (moved client, recruited server).
  std::string subject;
  /// RuntimeOps: the journal slice this step enacts, in commit order.
  std::vector<model::OpRecord> records;
  /// Index into `records` of the runtime-effective op (kNoEffective for a
  /// Replay step) — lets optimizer passes address it without re-deriving
  /// translator rules.
  static constexpr std::size_t kNoEffective = static_cast<std::size_t>(-1);
  std::size_t effective_record = kNoEffective;
  /// GaugeRedeploy: the affected elements whose gauges re-deploy. The
  /// executor issues them as one batched GaugeManager reconfigure, so the
  /// step's latency is the slowest element, not the sum.
  std::vector<std::string> elements;
  /// Indices of steps that must complete before this one starts.
  std::vector<std::size_t> deps;
  /// Planner's cost estimate (Translator::estimate for runtime steps,
  /// GaugeManager::redeploy_cost for gauge steps). Metadata for logs,
  /// benches, and plan analysis — execution charges real costs.
  SimTime estimated_cost;
  std::string label;
};

struct AdaptationPlan {
  std::vector<PlanStep> steps;
  /// The full committed journal, in commit order — the compensation source
  /// when the plan is preempted or fails mid-flight.
  std::vector<model::OpRecord> journal;

  std::size_t runtime_step_count() const;
  std::size_t gauge_step_count() const;
  /// Longest dependency chain by estimated cost — the plan's predicted
  /// end-to-end enactment latency under unlimited concurrency.
  SimTime estimated_critical_path() const;
  /// Sum of every step's estimate — what strictly sequential replay would
  /// predict.
  SimTime estimated_serial_cost() const;
};

/// True when the translator's rule table maps this record to at least one
/// runtime operation (server recruit/release inside a group scope, or a
/// boundTo client move). The planner uses this to segment the journal into
/// runtime steps; structural halves (attach/detach) and bookkeeping
/// properties ride along with their adjacent effective record.
bool runtime_effective(const model::OpRecord& op, const StyleConventions& conv);

/// Gauge-carrying element names disturbed by `records`: components touched
/// directly, plus connector-role elements ("Conn_User3.clientSide") of
/// re-wired connectors. With no gauge manager, falls back to the touched
/// component set (model-only rigs still get settle damping).
std::vector<std::string> affected_gauge_elements(
    const std::vector<model::OpRecord>& records,
    const monitor::GaugeManager* gauges);

/// Lift a committed journal into a plan: segment records into runtime steps
/// around the runtime-effective ops, wire dependencies between steps that
/// touch overlapping elements, and append one gauge-redeploy step per
/// affected element (depending on every runtime step that disturbs it).
/// `translator` and `gauges` supply cost estimates and the gauge catalog;
/// either may be null.
AdaptationPlan build_plan(const std::vector<model::OpRecord>& records,
                          const StyleConventions& conv,
                          const Translator* translator,
                          const monitor::GaugeManager* gauges);

}  // namespace arcadia::repair
