// C++-native repair strategies: the second authoring path (the first is
// the interpreted script language). A strategy is an ordered list of
// guarded tactics with an execution policy — "the general form of a repair
// strategy is a sequence of repair tactics. Each repair tactic is guarded
// by a precondition" (Section 3.2).
//
// The native fixLatency / trimServers strategies implement exactly the
// semantics of the shipped scripts; an integration test checks the two
// paths make identical decisions.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "acme/interpreter.hpp"
#include "model/transaction.hpp"
#include "repair/runtime_queries.hpp"
#include "repair/style_ops.hpp"

namespace arcadia::repair {

/// Everything a native tactic may consult or mutate.
struct TacticContext {
  const model::System& system;
  model::Transaction& txn;
  RuntimeQueries* queries = nullptr;  ///< may be null (model-only mode)
  StyleConventions conventions;
  /// Task-layer thresholds.
  double max_server_load = 6.0;
  Bandwidth min_bandwidth = Bandwidth::kbps(10);
  double min_utilization = 0.2;
  std::int64_t min_replicas = 2;
  double load_improvement = 2.0;
  /// The element whose constraint fired.
  std::string element;
};

/// Returns true when the tactic applied (its precondition held and it made
/// a change); false when not applicable. Throws ScriptError/ModelError on
/// hard failure (treated as abort).
using TacticFn = std::function<bool(TacticContext&)>;

struct CxxTactic {
  std::string name;
  TacticFn run;
};

enum class StrategyPolicy {
  FirstSuccess,  ///< apply the first tactic that succeeds, then commit
  TryAll,        ///< run every applicable tactic; commit if any succeeded
};

struct CxxStrategy {
  std::string name;
  StrategyPolicy policy = StrategyPolicy::FirstSuccess;
  std::vector<CxxTactic> tactics;

  /// Execute per the policy. Mirrors acme::StrategyOutcome semantics:
  /// committed when at least one tactic succeeded (the caller still owns
  /// the transaction commit), aborted otherwise.
  acme::StrategyOutcome run(TacticContext& ctx) const;
};

// ---- the standard client-server tactics (native forms) ----

/// fixServerLoad: grow every overloaded group connected to the client.
/// Applicable when some connected group's load exceeds max_server_load and
/// a spare server exists.
bool tactic_fix_server_load(TacticContext& ctx);

/// fixBandwidth: the client's role bandwidth is under min_bandwidth ->
/// move the client to the group with the best available bandwidth.
bool tactic_fix_bandwidth(TacticContext& ctx);

/// fixLoadByMove: no spare servers -> shed load by moving the client from
/// an overloaded group to a meaningfully less-loaded one (the repair the
/// paper's experiment fell back to once both spares were recruited).
bool tactic_fix_load_by_move(TacticContext& ctx);

/// shrinkGroup: release a dynamically-recruited server from an
/// underutilized group (the paper's third, unshown repair).
bool tactic_shrink_group(TacticContext& ctx);

/// fixLatency = [fixServerLoad, fixBandwidth, fixLoadByMove], first-success.
CxxStrategy make_fix_latency_strategy();
/// trimServers = [shrinkGroup], first-success.
CxxStrategy make_trim_strategy();

}  // namespace arcadia::repair
