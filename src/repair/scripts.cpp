#include "repair/scripts.hpp"

namespace arcadia::repair {

const char* extended_script() {
  return R"script(
// Latency constraint (Figure 5 line 1) and its strategy.
invariant r : averageLatency <= maxLatency !-> fixLatency(r);

strategy fixLatency(badClient : ClientT) = {
  if (fixServerLoad(badClient)) {
    commit repair;
  } else if (fixBandwidth(badClient, roleOf(badClient))) {
    commit repair;
  } else if (fixLoadByMove(badClient)) {
    commit repair;
  } else {
    abort NoApplicableTactic;
  }
}

// Grow overloaded groups. addServer() reports whether a spare server was
// actually recruited, so this tactic fails over to the move tactics when
// the pool is exhausted.
tactic fixServerLoad(client : ClientT) : boolean = {
  let loaded : set{ServerGroupT} =
    select sgrp : ServerGroupT in self.Components |
      connected(sgrp, client) and sgrp.load > maxServerLoad;
  if (size(loaded) == 0) {
    return false;
  }
  let grown : set{ServerGroupT} =
    select sgrp : ServerGroupT in loaded | sgrp.addServer();
  return size(grown) > 0;
}

// Move a bandwidth-starved client to the group with the best path.
tactic fixBandwidth(client : ClientT, role : ClientRoleT) : boolean = {
  if (role.bandwidth >= minBandwidth) {
    return false;
  }
  let goodSGrp : ServerGroupT = findGoodSGrp(client, minBandwidth);
  if (goodSGrp != nil) {
    client.move(goodSGrp);
    return true;
  }
  return false;
}

// Load-shedding move: the client's group is overloaded, no spare servers
// exist, but another group is meaningfully less loaded.
tactic fixLoadByMove(client : ClientT) : boolean = {
  let current : ServerGroupT = groupOf(client);
  if (current == nil) {
    return false;
  }
  if (current.load <= maxServerLoad) {
    return false;
  }
  let target : ServerGroupT = findLessLoadedSGrp(client, current);
  if (target == nil) {
    return false;
  }
  client.move(target);
  return true;
}

// Cost control: release dynamically-recruited servers from underutilized
// groups (the paper's "third repair", not shown in Figure 5).
invariant u : utilization >= minUtilization or replicationCount <= minReplicas
  !-> trimServers(u);

strategy trimServers(group : ServerGroupT) = {
  if (shrinkGroup(group)) {
    commit repair;
  } else {
    abort NothingToTrim;
  }
}

tactic shrinkGroup(group : ServerGroupT) : boolean = {
  if (group.utilization >= minUtilization) {
    return false;
  }
  if (group.replicationCount <= minReplicas) {
    return false;
  }
  return group.removeServer();
}
)script";
}

}  // namespace arcadia::repair
