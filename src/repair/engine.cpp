#include "repair/engine.hpp"

#include <algorithm>

#include "model/types.hpp"
#include "monitor/topics.hpp"
#include "repair/plan_optimizer.hpp"
#include "repair/registry.hpp"
#include "util/log.hpp"

namespace arcadia::repair {

RepairEngine::RepairEngine(sim::Simulator& sim, model::System& root,
                           const acme::Script& script, RuntimeQueries* queries,
                           Translator* translator,
                           monitor::GaugeManager* gauges,
                           RepairEngineConfig config)
    : sim_(sim),
      root_(root),
      script_(script),
      queries_(queries),
      translator_(translator),
      gauges_(gauges),
      config_(config),
      interpreter_(root, script),
      executor_(sim, translator, gauges) {
  executor_.set_retry_policy(config_.retry);
  OperatorThresholds op_th;
  op_th.min_bandwidth = config_.min_bandwidth;
  op_th.load_improvement = config_.load_improvement;
  register_client_server_ops(interpreter_, root_, queries_,
                             config_.conventions, op_th);
  interpreter_.bind_global("maxServerLoad",
                           acme::EvalValue(config_.max_server_load));
  interpreter_.bind_global("minBandwidth",
                           acme::EvalValue(config_.min_bandwidth.as_bps()));
  interpreter_.bind_global("minUtilization",
                           acme::EvalValue(config_.min_utilization));
  interpreter_.bind_global(
      "minReplicas",
      acme::EvalValue(static_cast<double>(config_.min_replicas)));

  // Seed the native catalog from the registry; add_strategy() entries
  // shadow it per engine.
  for (const std::string& name : StrategyRegistry::instance().names()) {
    native_[name] = StrategyRegistry::instance().at(name);
  }
  chooser_ = PolicyRegistry::instance().at(
      config_.policy_name.empty()
          ? (config_.policy == ViolationPolicy::WorstFirst ? "worst-first"
                                                           : "first-reported")
          : config_.policy_name);
}

void RepairEngine::add_strategy(CxxStrategy strategy) {
  native_[strategy.name] = std::move(strategy);
}

std::vector<std::string> RepairEngine::strategy_names() const {
  std::vector<std::string> out;
  out.reserve(native_.size());
  for (const auto& [name, strategy] : native_) out.push_back(name);
  return out;
}

bool RepairEngine::suppressed(util::Symbol element) const {
  const SimTime* until = settle_until_.find(element);
  return until && sim_.now() < *until;
}

bool RepairEngine::constraint_cooling(util::Symbol constraint_id) const {
  const SimTime* until = cooldown_until_.find(constraint_id);
  return until && sim_.now() < *until;
}

bool RepairEngine::touched_by_active(util::Symbol element) const {
  if (!active_) return false;
  return std::find(active_->touched.begin(), active_->touched.end(),
                   element) != active_->touched.end();
}

bool RepairEngine::handle_violations(const std::vector<Violation>& violations) {
  const bool preemptable =
      busy_ && config_.use_plan && config_.preemption && active_.has_value();
  if (busy_ && !preemptable) return false;
  std::vector<const Violation*> candidates;
  for (const Violation& v : violations) {
    if (v.constraint->handler.empty()) continue;
    if (config_.damping) {
      // The constraint carries pre-interned symbols: no string hashing on
      // the per-check damping filter.
      if (suppressed(v.constraint->element_sym)) continue;
      if (constraint_cooling(v.constraint->id_sym)) continue;
    }
    // Never preempt a plan on behalf of an element it is itself acting on:
    // the in-flight repair has not had the chance to take effect there.
    if (busy_ && touched_by_active(v.constraint->element_sym)) continue;
    candidates.push_back(&v);
  }
  if (candidates.empty()) return false;
  const std::size_t pick = chooser_(candidates);
  if (pick >= candidates.size()) return false;  // the policy declined
  const Violation& chosen = *candidates[pick];
  if (busy_) {
    // Preemption: only for a strictly worse violation than the one the
    // active plan is repairing. Severities are only comparable when both
    // are positive threshold readings (Violation.observed is 0 for
    // non-threshold constraints, and an idle-group utilization reads 0 —
    // either would let every candidate "win" and defeat the thrash bound).
    if (!active_ || active_->observed <= 0.0 ||
        !(chosen.observed > active_->observed * config_.preempt_factor)) {
      return false;
    }
    preempt_active("PreemptedBy:" + chosen.constraint->id);
  }
  execute(chosen);
  return true;
}

acme::StrategyOutcome RepairEngine::run_native(const std::string& handler,
                                               const std::string& element,
                                               model::Transaction& txn) {
  auto it = native_.find(handler);
  if (it == native_.end()) {
    acme::StrategyOutcome out;
    out.aborted = true;
    out.abort_reason = "UnknownStrategy:" + handler;
    return out;
  }
  TacticContext ctx{root_,
                    txn,
                    queries_,
                    config_.conventions,
                    config_.max_server_load,
                    config_.min_bandwidth,
                    config_.min_utilization,
                    config_.min_replicas,
                    config_.load_improvement,
                    element};
  return it->second.run(ctx);
}

void RepairEngine::execute(const Violation& violation) {
  // Consume the preemption carry-over now: it belongs to THIS repair (the
  // challenger), never to a later unrelated one.
  const SimTime start_delay = pending_start_delay_;
  pending_start_delay_ = SimTime::zero();
  RepairRecord record;
  record.id = records_.size();
  record.constraint_id = violation.constraint->id;
  record.element = violation.element;
  record.strategy = violation.constraint->handler;
  record.started = sim_.now();
  record.decision_cost = config_.decision_cost;

  ARC_INFO << "[" << sim_.now().as_seconds() << "s] repair: " << record.strategy
           << "(" << record.element << ") triggered by "
           << record.constraint_id;

  model::Transaction txn(root_);
  acme::StrategyOutcome outcome;
  try {
    if (config_.use_script && script_.find_strategy(record.strategy)) {
      acme::EvalValue arg(acme::ElementRef::of_component(
          root_, root_.component(record.element)));
      outcome = interpreter_.run_strategy(record.strategy, {arg}, txn);
    } else {
      outcome = run_native(record.strategy, record.element, txn);
    }
  } catch (const Error& e) {
    outcome.aborted = true;
    outcome.abort_reason = e.what();
  }
  record.tactics = outcome.tactics_run;
  record.query_cost = queries_ ? queries_->drain_query_cost() : SimTime::zero();

  if (outcome.committed && txn.op_count() > 0) {
    std::vector<model::OpRecord> op_records = txn.records();
    txn.commit();
    record.committed = true;
    record.tactic_spans = outcome.spans;
    record.journal = op_records;
    summarize_ops(op_records, record);
    std::size_t idx = records_.size();
    if (journal_sink_) {
      // WAL point: the commit is durable before the translator enacts it.
      journal_sink_->on_ops(journal_shard_, sim_.now(), idx,
                            /*compensation=*/false, op_records);
    }
    busy_ = true;
    const SimTime pre = record.decision_cost + record.query_cost + start_delay;

    if (config_.use_plan) {
      // Lift the committed journal into a plan, optimize it, and enact it
      // after the decision + query charge.
      AdaptationPlan plan =
          build_plan(op_records, config_.conventions, translator_, gauges_);
      const PlanOptimizerStats opt = optimize_plan(plan, &effect_table_);
      stats_.plan_steps_merged += opt.moves_merged + opt.gauges_batched;
      record.plan_steps = static_cast<int>(plan.steps.size());
      record.plan_steps_merged =
          static_cast<int>(opt.moves_merged + opt.gauges_batched);
      ARC_DEBUG << "  plan: " << plan.steps.size() << " steps ("
                << plan.runtime_step_count() << " runtime), est critical "
                << plan.estimated_critical_path().as_seconds() << "s vs serial "
                << plan.estimated_serial_cost().as_seconds() << "s";
      records_.push_back(std::move(record));
      active_.emplace();
      active_->idx = idx;
      active_->observed = violation.observed;
      active_->plan = std::move(plan);
      std::set<util::Symbol> touched;
      touched.insert(util::Symbol::intern(records_[idx].element));
      for (const PlanStep& step : active_->plan.steps) {
        for (const std::string& el : step.elements) {
          touched.insert(util::Symbol::intern(el));
        }
        if (!step.subject.empty()) {
          touched.insert(util::Symbol::intern(step.subject));
        }
      }
      for (const std::string& el :
           affected_gauge_elements(active_->plan.journal, nullptr)) {
        touched.insert(util::Symbol::intern(el));
      }
      active_->touched.assign(touched.begin(), touched.end());
      publish_plan_event(monitor::topics::kPhasePlanStarted, idx,
                         active_->plan.steps.size());
      active_->pre_event =
          sim_.schedule_in(pre, [this, idx] { start_plan(idx); });
      return;
    }

    // Legacy strictly-sequential replay (the bench baseline).
    records_.push_back(std::move(record));
    sim_.schedule_in(pre, [this, idx, ops = std::move(op_records)]() mutable {
      apply_committed(idx, std::move(ops));
    });
    return;
  }

  // Abort (or a commit that changed nothing — nothing to translate).
  if (txn.is_open()) txn.rollback();
  record.aborted = true;
  record.abort_reason = outcome.committed ? "NoEffect" : outcome.abort_reason;
  record.completed =
      sim_.now() + record.decision_cost + record.query_cost + start_delay;
  record.finished = true;
  ++stats_.aborted;
  if (config_.damping) {
    cooldown_until_.insert_or_assign(util::Symbol::intern(record.constraint_id),
                                     sim_.now() + config_.abort_cooldown);
  }
  ARC_INFO << "  -> aborted: " << record.abort_reason;
  records_.push_back(std::move(record));
}

void RepairEngine::summarize_ops(const std::vector<model::OpRecord>& op_records,
                                 RepairRecord& record) {
  bool moved = false;
  for (const model::OpRecord& op : op_records) {
    record.ops.push_back(op.describe());
    switch (op.kind) {
      case model::OpKind::AddComponent:
        if (!op.scope.empty()) ++record.servers_added;
        break;
      case model::OpKind::RemoveComponent:
        if (!op.scope.empty()) ++record.servers_removed;
        break;
      case model::OpKind::Attach:
        moved = true;
        break;
      default:
        break;
    }
  }
  if (moved) ++record.moves;
}

// ---- plan pipeline ----

void RepairEngine::start_plan(std::size_t idx) {
  if (!active_ || active_->idx != idx) return;  // preempted before starting
  PlanExecutor::Callbacks cb;
  cb.on_step_done = [this](std::size_t) { ++stats_.plan_steps_executed; };
  cb.on_done = [this, idx] { finish_plan(idx); };
  cb.on_failed = [this, idx](std::size_t step, const std::string& reason,
                             SimTime compensation_cost) {
    fail_plan(idx, step, reason, compensation_cost);
  };
  executor_.run(&active_->plan, std::move(cb));
}

void RepairEngine::note_fault_stats(RepairRecord& record) {
  const PlanExecutor::FaultStats& fs = executor_.fault_stats();
  record.ops_retried = static_cast<int>(fs.ops_retried);
  record.ops_timed_out = static_cast<int>(fs.ops_timed_out);
  stats_.ops_retried += fs.ops_retried;
  stats_.ops_timed_out += fs.ops_timed_out;
  if (fs.ops_retried > 0) ++stats_.repairs_retried;
}

void RepairEngine::finish_plan(std::size_t idx) {
  if (!active_) return;  // preempted between the executor's done and here
  RepairRecord& record = records_[idx];
  record.op_cost = executor_.runtime_cost();
  record.gauge_cost = executor_.gauge_wall();
  note_fault_stats(record);
  // Settle exactly what was re-deployed: the plan's gauge steps are the
  // source of truth (distinct elements by construction). Model-only rigs
  // have no gauge steps; fall back to the journal's component set so
  // settle damping still covers the touched elements.
  std::vector<std::string> affected;
  for (const PlanStep& step : active_->plan.steps) {
    affected.insert(affected.end(), step.elements.begin(),
                    step.elements.end());
  }
  if (affected.empty()) {
    affected = affected_gauge_elements(active_->plan.journal, nullptr);
  }
  publish_plan_event(monitor::topics::kPhasePlanCompleted, idx,
                     active_->plan.steps.size());
  active_.reset();
  finish(idx, affected);
}

void RepairEngine::abort_in_flight(std::size_t idx, const std::string& reason,
                                   SimTime completed_at, bool cooldown) {
  RepairRecord& record = records_[idx];
  record.committed = false;
  record.aborted = true;
  record.abort_reason = reason;
  record.completed = completed_at;
  record.finished = true;
  busy_ = false;
  ++stats_.aborted;
  if (cooldown && config_.damping) {
    cooldown_until_.insert_or_assign(util::Symbol::intern(record.constraint_id),
                                     sim_.now() + config_.abort_cooldown);
  }
}

void RepairEngine::fail_plan(std::size_t idx, std::size_t step,
                             const std::string& reason,
                             SimTime compensation_cost) {
  if (!active_) return;  // preempted between the executor's failure and here
  // The runtime rejected a step (paper Section 7: "if the server load is
  // too high and there are no available servers ... it may be necessary to
  // alert a human observer"). The executor already compensated the enacted
  // steps at the runtime layer; revert the model symmetrically so the two
  // stay convergent, then cool the constraint down and surface it loudly.
  revert_model(active_->plan.journal, idx);
  note_fault_stats(records_[idx]);
  abort_in_flight(idx, std::string("RuntimeFailure: ") + reason,
                  sim_.now() + compensation_cost, /*cooldown=*/true);
  publish_plan_event(monitor::topics::kPhasePlanFailed, idx,
                     active_->plan.steps.size());
  ARC_ERROR << "repair #" << records_[idx].id << " failed at plan step "
            << step << ": " << reason << " — operator attention required";
  active_.reset();
}

void RepairEngine::preempt_active(const std::string& reason) {
  if (!active_) return;
  const std::size_t idx = active_->idx;
  PlanExecutor::AbortResult aborted;
  if (executor_.active()) {
    aborted = executor_.abort();
    note_fault_stats(records_[idx]);
  } else {
    // Still inside the decision-charge delay: nothing launched yet.
    active_->pre_event.cancel();
    aborted.steps_skipped = active_->plan.steps.size();
  }
  stats_.plan_steps_preempted += aborted.steps_skipped;
  ++stats_.plans_preempted;
  revert_model(active_->plan.journal, idx);
  abort_in_flight(idx, reason, sim_.now() + aborted.compensation_cost,
                  /*cooldown=*/false);
  records_[idx].preempted = true;
  // The challenger's enactment queues behind the inverse ops still
  // clearing the runtime; its decision phase absorbs the wait.
  pending_start_delay_ = aborted.compensation_cost;
  publish_plan_event(monitor::topics::kPhasePlanPreempted, idx,
                     active_->plan.steps.size());
  ARC_INFO << "[" << sim_.now().as_seconds() << "s] repair #"
           << records_[idx].id << " preempted (" << reason << "): "
           << aborted.steps_enacted << " step(s) compensated, "
           << aborted.steps_skipped << " skipped";
  active_.reset();
}

void RepairEngine::revert_model(const std::vector<model::OpRecord>& journal,
                                std::size_t idx) {
  model::Transaction txn(root_);
  try {
    for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
      if (std::optional<model::OpRecord> inv = it->inverse()) {
        model::apply_op(txn, *inv);
      }
    }
    txn.commit();
    if (journal_sink_ && txn.op_count() > 0) {
      // Compensation commit: journaled like any other, tagged so replay
      // knows these ops undo repair `idx` rather than advance it.
      journal_sink_->on_ops(journal_shard_, sim_.now(), idx,
                            /*compensation=*/true, txn.records());
    }
  } catch (const Error& e) {
    ARC_ERROR << "plan compensation: model revert failed: " << e.what();
    if (txn.is_open()) txn.rollback();
  }
}

void RepairEngine::publish_plan_event(util::Symbol phase, std::size_t idx,
                                      std::size_t steps) {
  if (journal_sink_) {
    journal_sink_->on_plan_event(journal_shard_, sim_.now(), phase.str(), idx,
                                 steps);
  }
  if (!bus_) return;
  events::Notification n(monitor::topics::kRepairPlanSym);
  n.set(monitor::topics::kAttrRepairSym, static_cast<double>(idx))
      .set(monitor::topics::kAttrPhaseSym, phase)
      .set(monitor::topics::kAttrStepsSym, static_cast<double>(steps));
  n.wire_size = DataSize::bytes(256);
  bus_->publish(std::move(n));
}

// ---- legacy strictly-sequential replay (use_plan = false) ----

void RepairEngine::apply_committed(std::size_t idx,
                                   std::vector<model::OpRecord> op_records) {
  RepairRecord& record = records_[idx];
  SimTime op_cost = SimTime::zero();
  if (translator_) {
    try {
      op_cost = translator_->apply(op_records);
    } catch (const Error& e) {
      // See fail_plan: same contract, minus the compensation — this path
      // is kept exactly as the paper behaved. The model keeps the
      // committed-but-unenacted change (the consistency checker reports
      // the drift), the record stays `committed`, and it still shows up
      // in repair_windows(), matching what the pre-plan repair_windows()
      // computed from the records.
      record.aborted = true;
      record.abort_reason = std::string("RuntimeFailure: ") + e.what();
      record.completed = sim_.now();
      record.finished = true;
      busy_ = false;
      ++stats_.aborted;
      if (config_.damping) {
        cooldown_until_.insert_or_assign(
            util::Symbol::intern(record.constraint_id),
            sim_.now() + config_.abort_cooldown);
      }
      windows_.emplace_back(record.started, record.completed);
      ARC_ERROR << "repair #" << record.id
                << " failed at the runtime layer: " << e.what()
                << " — operator attention required";
      return;
    }
  }
  record.op_cost = op_cost;
  auto affected = std::make_shared<std::vector<std::string>>(
      affected_gauge_elements(op_records, gauges_));
  sim_.schedule_in(op_cost, [this, idx, affected] {
    redeploy_chain(idx, affected, 0, sim_.now());
  });
}

void RepairEngine::redeploy_chain(
    std::size_t idx, std::shared_ptr<std::vector<std::string>> elements,
    std::size_t next, SimTime gauge_started) {
  if (!gauges_ || next >= elements->size()) {
    records_[idx].gauge_cost = sim_.now() - gauge_started;
    finish(idx, *elements);
    return;
  }
  const std::string element = (*elements)[next];
  gauges_->redeploy_element(element, [this, idx, elements, next,
                                      gauge_started] {
    redeploy_chain(idx, elements, next + 1, gauge_started);
  });
}

void RepairEngine::finish(std::size_t idx,
                          const std::vector<std::string>& affected) {
  RepairRecord& record = records_[idx];
  record.completed = sim_.now();
  record.finished = true;
  busy_ = false;
  ++stats_.committed;
  stats_.moves += record.moves;
  stats_.servers_added += record.servers_added;
  stats_.servers_removed += record.servers_removed;
  stats_.repair_seconds_total += record.duration().as_seconds();
  windows_.emplace_back(record.started, record.completed);
  if (config_.damping) {
    for (const std::string& element : affected) {
      settle_until_.insert_or_assign(util::Symbol::intern(element),
                                     sim_.now() + config_.settle_time);
    }
    settle_until_.insert_or_assign(util::Symbol::intern(record.element),
                                   sim_.now() + config_.settle_time);
  }
  ARC_INFO << "[" << sim_.now().as_seconds() << "s] repair #" << record.id
           << " done in " << record.duration().as_seconds() << "s (ops "
           << record.op_cost.as_seconds() << "s, gauges "
           << record.gauge_cost.as_seconds() << "s): moves=" << record.moves
           << " +servers=" << record.servers_added
           << " -servers=" << record.servers_removed;
}

}  // namespace arcadia::repair
