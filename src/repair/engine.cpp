#include "repair/engine.hpp"

#include <algorithm>

#include "model/types.hpp"
#include "repair/registry.hpp"
#include "util/log.hpp"

namespace arcadia::repair {

RepairEngine::RepairEngine(sim::Simulator& sim, model::System& root,
                           const acme::Script& script, RuntimeQueries* queries,
                           Translator* translator,
                           monitor::GaugeManager* gauges,
                           RepairEngineConfig config)
    : sim_(sim),
      root_(root),
      script_(script),
      queries_(queries),
      translator_(translator),
      gauges_(gauges),
      config_(config),
      interpreter_(root, script) {
  OperatorThresholds op_th;
  op_th.min_bandwidth = config_.min_bandwidth;
  op_th.load_improvement = config_.load_improvement;
  register_client_server_ops(interpreter_, root_, queries_,
                             config_.conventions, op_th);
  interpreter_.bind_global("maxServerLoad",
                           acme::EvalValue(config_.max_server_load));
  interpreter_.bind_global("minBandwidth",
                           acme::EvalValue(config_.min_bandwidth.as_bps()));
  interpreter_.bind_global("minUtilization",
                           acme::EvalValue(config_.min_utilization));
  interpreter_.bind_global(
      "minReplicas",
      acme::EvalValue(static_cast<double>(config_.min_replicas)));

  // Seed the native catalog from the registry; add_strategy() entries
  // shadow it per engine.
  for (const std::string& name : StrategyRegistry::instance().names()) {
    native_[name] = StrategyRegistry::instance().at(name);
  }
  chooser_ = PolicyRegistry::instance().at(
      config_.policy_name.empty()
          ? (config_.policy == ViolationPolicy::WorstFirst ? "worst-first"
                                                           : "first-reported")
          : config_.policy_name);
}

void RepairEngine::add_strategy(CxxStrategy strategy) {
  native_[strategy.name] = std::move(strategy);
}

std::vector<std::string> RepairEngine::strategy_names() const {
  std::vector<std::string> out;
  out.reserve(native_.size());
  for (const auto& [name, strategy] : native_) out.push_back(name);
  return out;
}

bool RepairEngine::suppressed(util::Symbol element) const {
  const SimTime* until = settle_until_.find(element);
  return until && sim_.now() < *until;
}

bool RepairEngine::constraint_cooling(util::Symbol constraint_id) const {
  const SimTime* until = cooldown_until_.find(constraint_id);
  return until && sim_.now() < *until;
}

bool RepairEngine::handle_violations(const std::vector<Violation>& violations) {
  if (busy_) return false;
  std::vector<const Violation*> candidates;
  for (const Violation& v : violations) {
    if (v.constraint->handler.empty()) continue;
    if (config_.damping) {
      // The constraint carries pre-interned symbols: no string hashing on
      // the per-check damping filter.
      if (suppressed(v.constraint->element_sym)) continue;
      if (constraint_cooling(v.constraint->id_sym)) continue;
    }
    candidates.push_back(&v);
  }
  if (candidates.empty()) return false;
  const std::size_t pick = chooser_(candidates);
  if (pick >= candidates.size()) return false;  // the policy declined
  execute(*candidates[pick]);
  return true;
}

acme::StrategyOutcome RepairEngine::run_native(const std::string& handler,
                                               const std::string& element,
                                               model::Transaction& txn) {
  auto it = native_.find(handler);
  if (it == native_.end()) {
    acme::StrategyOutcome out;
    out.aborted = true;
    out.abort_reason = "UnknownStrategy:" + handler;
    return out;
  }
  TacticContext ctx{root_,
                    txn,
                    queries_,
                    config_.conventions,
                    config_.max_server_load,
                    config_.min_bandwidth,
                    config_.min_utilization,
                    config_.min_replicas,
                    config_.load_improvement,
                    element};
  return it->second.run(ctx);
}

void RepairEngine::execute(const Violation& violation) {
  RepairRecord record;
  record.id = records_.size();
  record.constraint_id = violation.constraint->id;
  record.element = violation.element;
  record.strategy = violation.constraint->handler;
  record.started = sim_.now();
  record.decision_cost = config_.decision_cost;

  ARC_INFO << "[" << sim_.now().as_seconds() << "s] repair: " << record.strategy
           << "(" << record.element << ") triggered by "
           << record.constraint_id;

  model::Transaction txn(root_);
  acme::StrategyOutcome outcome;
  try {
    if (config_.use_script && script_.find_strategy(record.strategy)) {
      acme::EvalValue arg(acme::ElementRef::of_component(
          root_, root_.component(record.element)));
      outcome = interpreter_.run_strategy(record.strategy, {arg}, txn);
    } else {
      outcome = run_native(record.strategy, record.element, txn);
    }
  } catch (const Error& e) {
    outcome.aborted = true;
    outcome.abort_reason = e.what();
  }
  record.tactics = outcome.tactics_run;
  record.query_cost = queries_ ? queries_->drain_query_cost() : SimTime::zero();

  if (outcome.committed && txn.op_count() > 0) {
    std::vector<model::OpRecord> op_records = txn.records();
    txn.commit();
    record.committed = true;
    summarize_ops(op_records, record);
    std::size_t idx = records_.size();
    records_.push_back(std::move(record));
    busy_ = true;
    const SimTime pre = records_[idx].decision_cost + records_[idx].query_cost;
    sim_.schedule_in(pre, [this, idx, ops = std::move(op_records)]() mutable {
      apply_committed(idx, std::move(ops));
    });
    return;
  }

  // Abort (or a commit that changed nothing — nothing to translate).
  if (txn.is_open()) txn.rollback();
  record.aborted = true;
  record.abort_reason = outcome.committed ? "NoEffect" : outcome.abort_reason;
  record.completed = sim_.now() + record.decision_cost + record.query_cost;
  record.finished = true;
  ++stats_.aborted;
  if (config_.damping) {
    cooldown_until_.insert_or_assign(util::Symbol::intern(record.constraint_id),
                                     sim_.now() + config_.abort_cooldown);
  }
  ARC_INFO << "  -> aborted: " << record.abort_reason;
  records_.push_back(std::move(record));
}

void RepairEngine::summarize_ops(const std::vector<model::OpRecord>& op_records,
                                 RepairRecord& record) {
  bool moved = false;
  for (const model::OpRecord& op : op_records) {
    record.ops.push_back(op.describe());
    switch (op.kind) {
      case model::OpKind::AddComponent:
        if (!op.scope.empty()) ++record.servers_added;
        break;
      case model::OpKind::RemoveComponent:
        if (!op.scope.empty()) ++record.servers_removed;
        break;
      case model::OpKind::Attach:
        moved = true;
        break;
      default:
        break;
    }
  }
  if (moved) ++record.moves;
}

void RepairEngine::apply_committed(std::size_t idx,
                                   std::vector<model::OpRecord> op_records) {
  RepairRecord& record = records_[idx];
  SimTime op_cost = SimTime::zero();
  if (translator_) {
    try {
      op_cost = translator_->apply(op_records);
    } catch (const Error& e) {
      // The runtime rejected the change (paper Section 7: "if the server
      // load is too high and there are no available servers ... it may be
      // necessary to alert a human observer"). The model now disagrees
      // with the runtime for this repair; record the failure, cool the
      // constraint down, and surface it loudly.
      record.aborted = true;
      record.abort_reason = std::string("RuntimeFailure: ") + e.what();
      record.completed = sim_.now();
      record.finished = true;
      busy_ = false;
      ++stats_.aborted;
      if (config_.damping) {
        cooldown_until_.insert_or_assign(
            util::Symbol::intern(record.constraint_id),
            sim_.now() + config_.abort_cooldown);
      }
      ARC_ERROR << "repair #" << record.id
                << " failed at the runtime layer: " << e.what()
                << " — operator attention required";
      return;
    }
  }
  record.op_cost = op_cost;
  auto affected = std::make_shared<std::vector<std::string>>(
      affected_gauge_elements(op_records));
  sim_.schedule_in(op_cost, [this, idx, affected] {
    redeploy_chain(idx, affected, 0, sim_.now());
  });
}

void RepairEngine::redeploy_chain(
    std::size_t idx, std::shared_ptr<std::vector<std::string>> elements,
    std::size_t next, SimTime gauge_started) {
  if (!gauges_ || next >= elements->size()) {
    records_[idx].gauge_cost = sim_.now() - gauge_started;
    finish(idx, *elements);
    return;
  }
  const std::string element = (*elements)[next];
  gauges_->redeploy_element(element, [this, idx, elements, next,
                                      gauge_started] {
    redeploy_chain(idx, elements, next + 1, gauge_started);
  });
}

void RepairEngine::finish(std::size_t idx,
                          const std::vector<std::string>& affected) {
  RepairRecord& record = records_[idx];
  record.completed = sim_.now();
  record.finished = true;
  busy_ = false;
  ++stats_.committed;
  stats_.moves += record.moves;
  stats_.servers_added += record.servers_added;
  stats_.servers_removed += record.servers_removed;
  stats_.repair_seconds_total += record.duration().as_seconds();
  if (config_.damping) {
    for (const std::string& element : affected) {
      settle_until_.insert_or_assign(util::Symbol::intern(element),
                                     sim_.now() + config_.settle_time);
    }
    settle_until_.insert_or_assign(util::Symbol::intern(record.element),
                                   sim_.now() + config_.settle_time);
  }
  ARC_INFO << "[" << sim_.now().as_seconds() << "s] repair #" << record.id
           << " done in " << record.duration().as_seconds() << "s (ops "
           << record.op_cost.as_seconds() << "s, gauges "
           << record.gauge_cost.as_seconds() << "s): moves=" << record.moves
           << " +servers=" << record.servers_added
           << " -servers=" << record.servers_removed;
}

std::vector<std::string> RepairEngine::affected_gauge_elements(
    const std::vector<model::OpRecord>& op_records) const {
  std::set<std::string> components;
  std::set<std::string> connectors;
  for (const model::OpRecord& op : op_records) {
    if (!op.scope.empty()) {
      components.insert(op.scope.front());
      continue;
    }
    switch (op.kind) {
      case model::OpKind::Attach:
      case model::OpKind::Detach:
        // The re-wired element is the connector (and so the client gauges
        // keyed on its roles); the groups on either end keep serving their
        // other clients undisturbed.
        connectors.insert(op.attachment.connector);
        break;
      case model::OpKind::SetProperty:
        components.insert(op.element);
        break;
      default:
        components.insert(op.element);
    }
  }
  std::vector<std::string> out;
  if (!gauges_) {
    out.assign(components.begin(), components.end());
    return out;
  }
  // Keep only elements that actually carry gauges; include connector-role
  // elements ("Conn_User3.clientSide") touched by attach/detach.
  for (const std::string& element : gauges_->all_elements()) {
    if (components.count(element)) {
      out.push_back(element);
      continue;
    }
    auto dot = element.find('.');
    if (dot != std::string::npos && connectors.count(element.substr(0, dot))) {
      out.push_back(element);
    }
  }
  return out;
}

std::vector<std::pair<SimTime, SimTime>> RepairEngine::repair_windows() const {
  std::vector<std::pair<SimTime, SimTime>> out;
  for (const RepairRecord& r : records_) {
    if (r.committed && r.finished) out.emplace_back(r.started, r.completed);
  }
  return out;
}

}  // namespace arcadia::repair
