// Asynchronous enactment of an AdaptationPlan on the simulator. Every step
// whose dependencies are satisfied launches immediately — independent
// runtime operations and gauge re-deployments overlap, so the plan's
// wall-clock is its critical path, not the serial sum the paper measured.
//
// A running plan can be aborted (preemption, or a translator failure mid
// step): un-launched steps are skipped, in-flight gauge redeployments are
// detached (their completions become no-ops; the gauges still come back on
// their own), and the already-enacted runtime steps are compensated by
// translating the inverse of their op records, newest first. Model-side
// compensation is the caller's job — it owns the journal and the System.
//
// Failure awareness (ahead of the compensation/abort path above): a typed
// repair::OpError(Transient) from the translator re-launches the step on a
// bounded, seeded-jitter exponential backoff schedule (RetryPolicy); a
// runtime step whose modeled cost exceeds the per-op timeout is rolled
// back (its own inverse ops only) and retried the same way. Permanent
// OpErrors, untyped Errors, and exhausted retry budgets fall through to
// fail_step / compensation exactly as before.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "repair/plan.hpp"
#include "repair/retry.hpp"
#include "sim/simulator.hpp"
#include "util/annotations.hpp"
#include "util/deterministic_rng.hpp"

namespace arcadia::repair {

class PlanExecutor {
 public:
  struct Callbacks {
    /// Fired as each step completes (optional; step index into the plan).
    std::function<void(std::size_t)> on_step_done;
    /// Every step completed.
    std::function<void()> on_done;
    /// A runtime step's translation threw. Enacted steps have already been
    /// compensated at the runtime layer (`compensation_cost` is the modeled
    /// cost of those inverse ops); the caller reverts the model.
    std::function<void(std::size_t step, const std::string& reason,
                       SimTime compensation_cost)>
        on_failed;
  };

  struct AbortResult {
    std::size_t steps_skipped = 0;  ///< never launched (or detached mid-air)
    std::size_t steps_enacted = 0;  ///< runtime steps whose ops had applied
    SimTime compensation_cost;      ///< modeled cost of the inverse ops
  };

  /// Per-run fault-handling counters (reset by each run()).
  struct FaultStats {
    std::uint64_t ops_retried = 0;    ///< retry launches scheduled
    std::uint64_t ops_timed_out = 0;  ///< steps rolled back by the timeout
  };

  /// `translator` and `gauges` may be null (model-only rigs; the matching
  /// step kinds then complete instantly and cost nothing).
  PlanExecutor(sim::Simulator& sim, Translator* translator,
               monitor::GaugeManager* gauges);

  /// Enact `plan`. The caller keeps the plan alive and unchanged until
  /// on_done / on_failed fires or abort() returns.
  void run(const AdaptationPlan* plan, Callbacks callbacks);

  /// Install the retry/backoff/timeout policy (reseeds the jitter stream;
  /// call before run()).
  void set_retry_policy(RetryPolicy policy);
  const RetryPolicy& retry_policy() const { return retry_; }
  /// Counters for the current (or most recently finished) run.
  const FaultStats& fault_stats() const { return fault_stats_; }

  bool active() const { return active_; }
  /// Sum of translator costs charged so far (compensation included).
  SimTime runtime_cost() const { return runtime_cost_; }
  /// Wall-clock between the first gauge step launching and the last one
  /// completing — the overlapped counterpart of the legacy gauge phase.
  SimTime gauge_wall() const;

  /// Abort the running plan (see file comment). No-op when idle.
  AbortResult abort();

 private:
  enum class State : std::uint8_t { Pending, Running, Done };

  void launch_ready();
  void start_step(std::size_t idx);
  void launch_runtime(std::size_t idx);
  void schedule_retry(std::size_t idx);
  void time_out_step(std::size_t idx);
  SimTime rollback_step(std::size_t idx);
  void complete_step(std::size_t idx);
  void fail_step(std::size_t idx, const std::string& reason);
  SimTime compensate_enacted();

  sim::Simulator& sim_;
  Translator* translator_;
  monitor::GaugeManager* gauges_;
  const AdaptationPlan* plan_ = nullptr;
  Callbacks cb_;
  std::vector<State> state_;
  std::vector<std::size_t> deps_left_;
  std::vector<std::vector<std::size_t>> dependents_;
  std::vector<std::size_t> enacted_;  ///< runtime steps applied, launch order
  std::vector<int> attempts_;         ///< per-step launch count (retries)
  std::vector<sim::EventHandle> completion_;  ///< pending runtime completions
  std::vector<sim::EventHandle> timeout_;     ///< pending per-op timeouts
  RetryPolicy retry_;
  Rng jitter_rng_{RetryPolicy{}.jitter_seed};
  FaultStats fault_stats_;
  std::size_t done_ = 0;
  bool active_ = false;
  /// Bumped whenever a run ends (done, failed, aborted): completions from a
  /// previous generation — e.g. a gauge redeploy finishing after an abort —
  /// are recognized and dropped.
  std::uint64_t generation_ = 0;
  SimTime runtime_cost_;
  bool saw_gauge_ = false;
  SimTime first_gauge_start_;
  SimTime last_gauge_done_;
  /// Concurrency capability: plan state advances only on the simulation
  /// thread (run/abort entry points plus completions the simulator fires);
  /// "overlapped" steps overlap in *simulated* time, not on host threads.
  util::SerialDomain serial_;
};

}  // namespace arcadia::repair
