#include "repair/constraint.hpp"

#include <set>

#include "acme/expr_parser.hpp"
#include "model/revision.hpp"

namespace arcadia::repair {

namespace {

void collect_free_names(const acme::Expr& expr, std::set<std::string>& out) {
  using namespace acme;
  if (const auto* name = dynamic_cast<const NameExpr*>(&expr)) {
    if (name->name != "self") out.insert(name->name);
    return;
  }
  if (const auto* member = dynamic_cast<const MemberExpr*>(&expr)) {
    collect_free_names(*member->object, out);
    return;
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(&expr)) {
    // The callee name is a function, not a property; only walk arguments.
    for (const auto& a : call->args) collect_free_names(*a, out);
    return;
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
    collect_free_names(*unary->operand, out);
    return;
  }
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
    collect_free_names(*binary->lhs, out);
    collect_free_names(*binary->rhs, out);
    return;
  }
  if (const auto* sel = dynamic_cast<const acme::SelectExpr*>(&expr)) {
    collect_free_names(*sel->domain, out);
    std::set<std::string> inner;
    collect_free_names(*sel->predicate, inner);
    inner.erase(sel->binder);
    out.insert(inner.begin(), inner.end());
    return;
  }
  if (const auto* q = dynamic_cast<const acme::QuantExpr*>(&expr)) {
    collect_free_names(*q->domain, out);
    std::set<std::string> inner;
    collect_free_names(*q->predicate, inner);
    inner.erase(q->binder);
    out.insert(inner.begin(), inner.end());
    return;
  }
}

}  // namespace

std::vector<std::string> free_names(const acme::Expr& expr) {
  std::set<std::string> set;
  collect_free_names(expr, set);
  return {set.begin(), set.end()};
}

bool expression_is_local(const acme::Expr& expr) {
  using namespace acme;
  if (dynamic_cast<const LiteralExpr*>(&expr)) return true;
  if (dynamic_cast<const NameExpr*>(&expr)) {
    // Bare names resolve to globals or the context element's properties;
    // even `self` alone carries no other element's state — reading through
    // it requires the member/call/comprehension nodes rejected below.
    return true;
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
    return expression_is_local(*unary->operand);
  }
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
    return expression_is_local(*binary->lhs) &&
           expression_is_local(*binary->rhs);
  }
  // MemberExpr, CallExpr, SelectExpr, QuantExpr can all reach elements
  // other than the one the constraint is attached to.
  return false;
}

ConstraintChecker::ConstraintChecker(const model::System& system)
    : system_(system) {}

void ConstraintChecker::bind_global(const std::string& name,
                                    acme::EvalValue value) {
  globals_.insert_or_assign(util::Symbol::intern(name), std::move(value));
  ++globals_stamp_;
}

void ConstraintChecker::set_element_suspect(util::Symbol element,
                                            bool suspect) {
  if (suspect) {
    suspect_.insert_or_assign(element, 1);
  } else {
    suspect_.erase(element);
  }
}

bool ConstraintChecker::element_suspect(util::Symbol element) const {
  return suspect_.contains(element);
}

void ConstraintChecker::add_constraint(const std::string& id,
                                       const std::string& element,
                                       const std::string& armani_source,
                                       const std::string& handler) {
  Constraint c;
  c.id = id;
  c.element = element;
  c.condition = std::shared_ptr<acme::Expr>(acme::parse_expression(armani_source));
  c.handler = handler;
  c.source = armani_source;
  c.id_sym = util::Symbol::intern(c.id);
  c.element_sym = util::Symbol::intern(c.element);
  constraints_.push_back(std::move(c));
}

std::size_t ConstraintChecker::instantiate(const acme::Script& script) {
  std::size_t created = 0;
  for (const acme::InvariantDecl& inv : script.invariants) {
    // Which properties must an element carry for this invariant to apply?
    std::vector<std::string> needed;
    for (const std::string& name : free_names(*inv.condition)) {
      if (!globals_.contains(util::Symbol::intern(name))) needed.push_back(name);
    }
    for (const model::Component* comp : system_.components()) {
      bool applies = !needed.empty();
      for (const std::string& prop : needed) {
        if (!comp->has_property(prop)) {
          applies = false;
          break;
        }
      }
      if (!applies) continue;
      Constraint c;
      c.id = (inv.name.empty() ? inv.handler : inv.name) + ":" + comp->name();
      c.element = comp->name();
      c.condition = inv.condition;  // shared across instances
      c.handler = inv.handler;
      c.source = "<script invariant line " + std::to_string(inv.line) + ">";
      c.id_sym = util::Symbol::intern(c.id);
      c.element_sym = comp->name_symbol();
      constraints_.push_back(std::move(c));
      ++created;
    }
  }
  return created;
}

bool ConstraintChecker::eval_constraint(const Constraint& c,
                                        double* observed) const {
  acme::EvalContext ctx(system_);
  for (const auto& e : globals_) ctx.bind(e.key, e.value);
  if (!c.element_sym.empty() && system_.has_component(c.element_sym)) {
    ctx.set_context_element(acme::ElementRef::of_component(
        system_, system_.component(c.element_sym)));
  }
  bool ok = evaluator_.evaluate_bool(*c.condition, ctx);
  if (observed) {
    *observed = 0.0;
    // For threshold comparisons, report the left-hand side's value so the
    // worst-first policy can rank violations.
    if (const auto* cmp = dynamic_cast<const acme::BinaryExpr*>(c.condition.get())) {
      using Op = acme::BinaryExpr::Op;
      if (cmp->op == Op::Le || cmp->op == Op::Lt || cmp->op == Op::Ge ||
          cmp->op == Op::Gt) {
        try {
          acme::EvalValue lhs = evaluator_.evaluate(*cmp->lhs, ctx);
          if (lhs.is_number()) *observed = lhs.as_number();
        } catch (const Error&) {
          // Leave observed at 0; ranking degrades gracefully.
        }
      }
    }
  }
  return ok;
}

void ConstraintChecker::ensure_memos() const {
  while (memos_.size() < constraints_.size()) {
    const Constraint& c = constraints_[memos_.size()];
    Memo memo;
    memo.local = expression_is_local(*c.condition);
    memos_.push_back(memo);
  }
}

std::vector<Violation> ConstraintChecker::check() const {
  ensure_memos();
  ++check_stats_.sweeps;

  const std::uint64_t structure_now = model::structure_clock();
  const std::uint64_t property_now = model::property_clock();
  const bool full = structure_now != structure_seen_ ||
                    globals_stamp_ != globals_seen_;
  if (full) ++check_stats_.full_sweeps;

  std::vector<Violation> out;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    const Constraint& c = constraints_[i];
    Memo& memo = memos_[i];
    if (!c.element_sym.empty() && !system_.has_component(c.element_sym)) {
      memo.valid = false;
      continue;
    }
    // Verdict hold: the element's monitoring evidence is suspect (stale
    // gauge channels), so neither assert a violation nor overwrite the
    // memo — the last trusted evaluation resumes when the channel clears.
    if (!c.element_sym.empty() && !suspect_.empty() &&
        suspect_.contains(c.element_sym)) {
      ++check_stats_.holds;
      continue;
    }
    const model::Component* element =
        c.element_sym.empty() ? nullptr : &system_.component(c.element_sym);

    bool reuse = memo.valid && !full;
    if (reuse) {
      if (memo.local && element) {
        // Exact match, not <=: a transaction rollback rewinds an element's
        // stamp below what a mid-transaction sweep may have memoised, and
        // that memo (of the discarded value) must not be reused.
        reuse = element->property_stamp() == memo.element_stamp;
      } else {
        // Non-local (or element-less): any property write in the process
        // could have changed the verdict.
        reuse = property_now == property_seen_;
      }
    }

    if (reuse) {
      ++check_stats_.cache_hits;
    } else {
      memo.satisfied = eval_constraint(c, &memo.observed);
      memo.element_stamp = element ? element->property_stamp() : 0;
      memo.valid = true;
      ++check_stats_.evaluations;
    }
    if (!memo.satisfied) {
      out.push_back(Violation{&c, c.element, memo.observed});
    }
  }

  structure_seen_ = structure_now;
  property_seen_ = property_now;
  globals_seen_ = globals_stamp_;
  return out;
}

bool ConstraintChecker::satisfied(const std::string& id) const {
  for (const Constraint& c : constraints_) {
    if (c.id == id) return eval_constraint(c, nullptr);
  }
  throw ModelError("unknown constraint '" + id + "'");
}

}  // namespace arcadia::repair
