#include "repair/constraint.hpp"

#include <set>

#include "acme/expr_parser.hpp"

namespace arcadia::repair {

namespace {

void collect_free_names(const acme::Expr& expr, std::set<std::string>& out) {
  using namespace acme;
  if (const auto* name = dynamic_cast<const NameExpr*>(&expr)) {
    if (name->name != "self") out.insert(name->name);
    return;
  }
  if (const auto* member = dynamic_cast<const MemberExpr*>(&expr)) {
    collect_free_names(*member->object, out);
    return;
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(&expr)) {
    // The callee name is a function, not a property; only walk arguments.
    for (const auto& a : call->args) collect_free_names(*a, out);
    return;
  }
  if (const auto* unary = dynamic_cast<const UnaryExpr*>(&expr)) {
    collect_free_names(*unary->operand, out);
    return;
  }
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(&expr)) {
    collect_free_names(*binary->lhs, out);
    collect_free_names(*binary->rhs, out);
    return;
  }
  if (const auto* sel = dynamic_cast<const acme::SelectExpr*>(&expr)) {
    collect_free_names(*sel->domain, out);
    std::set<std::string> inner;
    collect_free_names(*sel->predicate, inner);
    inner.erase(sel->binder);
    out.insert(inner.begin(), inner.end());
    return;
  }
  if (const auto* q = dynamic_cast<const acme::QuantExpr*>(&expr)) {
    collect_free_names(*q->domain, out);
    std::set<std::string> inner;
    collect_free_names(*q->predicate, inner);
    inner.erase(q->binder);
    out.insert(inner.begin(), inner.end());
    return;
  }
}

}  // namespace

std::vector<std::string> free_names(const acme::Expr& expr) {
  std::set<std::string> set;
  collect_free_names(expr, set);
  return {set.begin(), set.end()};
}

ConstraintChecker::ConstraintChecker(const model::System& system)
    : system_(system) {}

void ConstraintChecker::bind_global(const std::string& name,
                                    acme::EvalValue value) {
  globals_[name] = std::move(value);
}

void ConstraintChecker::add_constraint(const std::string& id,
                                       const std::string& element,
                                       const std::string& armani_source,
                                       const std::string& handler) {
  Constraint c;
  c.id = id;
  c.element = element;
  c.condition = std::shared_ptr<acme::Expr>(acme::parse_expression(armani_source));
  c.handler = handler;
  c.source = armani_source;
  constraints_.push_back(std::move(c));
}

std::size_t ConstraintChecker::instantiate(const acme::Script& script) {
  std::size_t created = 0;
  for (const acme::InvariantDecl& inv : script.invariants) {
    // Which properties must an element carry for this invariant to apply?
    std::vector<std::string> needed;
    for (const std::string& name : free_names(*inv.condition)) {
      if (!globals_.count(name)) needed.push_back(name);
    }
    for (const model::Component* comp : system_.components()) {
      bool applies = !needed.empty();
      for (const std::string& prop : needed) {
        if (!comp->has_property(prop)) {
          applies = false;
          break;
        }
      }
      if (!applies) continue;
      Constraint c;
      c.id = (inv.name.empty() ? inv.handler : inv.name) + ":" + comp->name();
      c.element = comp->name();
      c.condition = inv.condition;  // shared across instances
      c.handler = inv.handler;
      c.source = "<script invariant line " + std::to_string(inv.line) + ">";
      constraints_.push_back(std::move(c));
      ++created;
    }
  }
  return created;
}

bool ConstraintChecker::eval_constraint(const Constraint& c,
                                        double* observed) const {
  acme::EvalContext ctx(system_);
  for (const auto& [name, value] : globals_) ctx.bind(name, value);
  if (!c.element.empty() && system_.has_component(c.element)) {
    ctx.set_context_element(acme::ElementRef::of_component(
        system_, system_.component(c.element)));
  }
  bool ok = evaluator_.evaluate_bool(*c.condition, ctx);
  if (observed) {
    *observed = 0.0;
    // For threshold comparisons, report the left-hand side's value so the
    // worst-first policy can rank violations.
    if (const auto* cmp = dynamic_cast<const acme::BinaryExpr*>(c.condition.get())) {
      using Op = acme::BinaryExpr::Op;
      if (cmp->op == Op::Le || cmp->op == Op::Lt || cmp->op == Op::Ge ||
          cmp->op == Op::Gt) {
        try {
          acme::EvalValue lhs = evaluator_.evaluate(*cmp->lhs, ctx);
          if (lhs.is_number()) *observed = lhs.as_number();
        } catch (const Error&) {
          // Leave observed at 0; ranking degrades gracefully.
        }
      }
    }
  }
  return ok;
}

std::vector<Violation> ConstraintChecker::check() const {
  std::vector<Violation> out;
  for (const Constraint& c : constraints_) {
    if (!c.element.empty() && !system_.has_component(c.element)) continue;
    double observed = 0.0;
    if (!eval_constraint(c, &observed)) {
      out.push_back(Violation{&c, c.element, observed});
    }
  }
  return out;
}

bool ConstraintChecker::satisfied(const std::string& id) const {
  for (const Constraint& c : constraints_) {
    if (c.id == id) return eval_constraint(c, nullptr);
  }
  throw ModelError("unknown constraint '" + id + "'");
}

}  // namespace arcadia::repair
