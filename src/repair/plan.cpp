#include "repair/plan.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace arcadia::repair {

namespace {

/// Element names an op record reads or rewires — the planner's dependency
/// footprint. Deliberately conservative: the boundTo target group counts as
/// touched, so a move into a group serializes after a recruit into it.
void collect_touched(const model::OpRecord& op, const StyleConventions& conv,
                     std::set<std::string>& out) {
  if (!op.scope.empty()) out.insert(op.scope.front());
  if (!op.element.empty()) out.insert(op.element);
  if (op.kind == model::OpKind::Attach || op.kind == model::OpKind::Detach) {
    if (!op.attachment.component.empty()) out.insert(op.attachment.component);
    if (!op.attachment.connector.empty()) out.insert(op.attachment.connector);
  }
  if (op.kind == model::OpKind::SetProperty &&
      op.property == conv.bound_to_prop && op.value.is_string()) {
    out.insert(op.value.as_string());
  }
}

bool intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  const std::set<std::string>& small = a.size() <= b.size() ? a : b;
  const std::set<std::string>& large = a.size() <= b.size() ? b : a;
  for (const std::string& s : small) {
    if (large.count(s)) return true;
  }
  return false;
}

}  // namespace

bool runtime_effective(const model::OpRecord& op,
                       const StyleConventions& conv) {
  switch (op.kind) {
    case model::OpKind::AddComponent:
    case model::OpKind::RemoveComponent:
      // Server recruit/release inside a group representation; root-scope
      // structure has no runtime counterpart.
      return !op.scope.empty();
    case model::OpKind::SetProperty:
      return op.property == conv.bound_to_prop && op.value.is_string();
    default:
      return false;
  }
}

std::vector<std::string> affected_gauge_elements(
    const std::vector<model::OpRecord>& records,
    const monitor::GaugeManager* gauges) {
  std::set<std::string> components;
  std::set<std::string> connectors;
  for (const model::OpRecord& op : records) {
    if (!op.scope.empty()) {
      components.insert(op.scope.front());
      continue;
    }
    switch (op.kind) {
      case model::OpKind::Attach:
      case model::OpKind::Detach:
        // The re-wired element is the connector (and so the client gauges
        // keyed on its roles); the groups on either end keep serving their
        // other clients undisturbed.
        connectors.insert(op.attachment.connector);
        break;
      default:
        components.insert(op.element);
    }
  }
  std::vector<std::string> out;
  if (!gauges) {
    out.assign(components.begin(), components.end());
    return out;
  }
  // Keep only elements that actually carry gauges; include connector-role
  // elements ("Conn_User3.clientSide") touched by attach/detach.
  for (const std::string& element : gauges->all_elements()) {
    if (components.count(element)) {
      out.push_back(element);
      continue;
    }
    auto dot = element.find('.');
    if (dot != std::string::npos && connectors.count(element.substr(0, dot))) {
      out.push_back(element);
    }
  }
  return out;
}

std::size_t AdaptationPlan::runtime_step_count() const {
  std::size_t n = 0;
  for (const PlanStep& s : steps) {
    if (s.kind == PlanStep::Kind::RuntimeOps) ++n;
  }
  return n;
}

std::size_t AdaptationPlan::gauge_step_count() const {
  return steps.size() - runtime_step_count();
}

SimTime AdaptationPlan::estimated_critical_path() const {
  // Steps only depend on lower indices, so one forward pass suffices.
  std::vector<SimTime> finish(steps.size(), SimTime::zero());
  SimTime best = SimTime::zero();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    SimTime start = SimTime::zero();
    for (std::size_t d : steps[i].deps) start = std::max(start, finish[d]);
    finish[i] = start + steps[i].estimated_cost;
    best = std::max(best, finish[i]);
  }
  return best;
}

SimTime AdaptationPlan::estimated_serial_cost() const {
  SimTime sum = SimTime::zero();
  for (const PlanStep& s : steps) sum += s.estimated_cost;
  return sum;
}

AdaptationPlan build_plan(const std::vector<model::OpRecord>& records,
                          const StyleConventions& conv,
                          const Translator* translator,
                          const monitor::GaugeManager* gauges) {
  AdaptationPlan plan;
  plan.journal = records;

  // ---- segment the journal into runtime steps, one per effective op ----
  std::vector<std::size_t> effective;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (runtime_effective(records[i], conv)) effective.push_back(i);
  }

  // record index -> owning step index.
  std::vector<std::size_t> owner(records.size(), 0);
  std::size_t runtime_steps = 0;
  if (effective.empty()) {
    // Nothing the runtime acts on: a single zero-cost replay step keeps
    // the pipeline uniform (the translator still sees the records and
    // counts them as ignored).
    runtime_steps = records.empty() ? 0 : 1;
  } else {
    runtime_steps = effective.size();
    // Non-effective records ride with an adjacent effective op: with the
    // *next* one when they share a touched element (structural halves —
    // detach/attach — precede the boundTo that realizes the move),
    // otherwise with the previous one (bookkeeping like replicationCount
    // follows its AddComponent).
    std::vector<std::set<std::string>> eff_touched(effective.size());
    for (std::size_t k = 0; k < effective.size(); ++k) {
      collect_touched(records[effective[k]], conv, eff_touched[k]);
      owner[effective[k]] = k;
    }
    std::size_t next_eff = 0;  // first effective index >= current record
    for (std::size_t i = 0; i < records.size(); ++i) {
      while (next_eff < effective.size() && effective[next_eff] < i) {
        ++next_eff;
      }
      if (next_eff < effective.size() && effective[next_eff] == i) continue;
      std::set<std::string> touched;
      collect_touched(records[i], conv, touched);
      if (next_eff >= effective.size()) {
        owner[i] = effective.size() - 1;  // trailing: previous step
      } else if (next_eff == 0) {
        owner[i] = 0;  // leading: first step
      } else if (intersects(touched, eff_touched[next_eff])) {
        owner[i] = next_eff;
      } else {
        owner[i] = next_eff - 1;
      }
    }
  }

  plan.steps.resize(runtime_steps);
  {
    std::size_t next_eff = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      PlanStep& step = plan.steps[owner[i]];
      if (next_eff < effective.size() && effective[next_eff] == i) {
        step.effective_record = step.records.size();
        ++next_eff;
      }
      step.records.push_back(records[i]);
    }
  }
  std::vector<std::set<std::string>> touched(runtime_steps);
  for (std::size_t s = 0; s < runtime_steps; ++s) {
    PlanStep& step = plan.steps[s];
    step.kind = PlanStep::Kind::RuntimeOps;
    for (const model::OpRecord& op : step.records) {
      collect_touched(op, conv, touched[s]);
    }
    if (!effective.empty()) {
      const model::OpRecord& eff = records[effective[s]];
      step.subject = eff.element;
      switch (eff.kind) {
        case model::OpKind::AddComponent:
          step.op_class = PlanStep::OpClass::Recruit;
          break;
        case model::OpKind::RemoveComponent:
          step.op_class = PlanStep::OpClass::Release;
          break;
        default:
          step.op_class = PlanStep::OpClass::Move;
      }
    }
    step.label = effective.empty() ? "replay"
                                   : records[effective[s]].describe();
    if (translator) step.estimated_cost = translator->estimate(step.records);
    for (std::size_t prev = 0; prev < s; ++prev) {
      if (intersects(touched[s], touched[prev])) step.deps.push_back(prev);
    }
  }

  // ---- one gauge-redeploy step per disturbed element, depending on every
  //      runtime step that disturbs it ----
  if (gauges) {
    std::vector<std::string> order;  // first-disturbed order (deterministic)
    std::map<std::string, std::vector<std::size_t>> disturbed_by;
    for (std::size_t s = 0; s < runtime_steps; ++s) {
      for (const std::string& element :
           affected_gauge_elements(plan.steps[s].records, gauges)) {
        auto [it, fresh] = disturbed_by.try_emplace(element);
        if (fresh) order.push_back(element);
        it->second.push_back(s);
      }
    }
    for (const std::string& element : order) {
      PlanStep step;
      step.kind = PlanStep::Kind::GaugeRedeploy;
      step.elements.push_back(element);
      step.deps = disturbed_by[element];
      step.estimated_cost = gauges->redeploy_cost(element);
      step.label = "gauges:" + element;
      plan.steps.push_back(std::move(step));
    }
  }
  return plan;
}

}  // namespace arcadia::repair
