// Cost-aware optimization passes over an AdaptationPlan, run between
// lifting and enactment:
//
//   1. merge-moves    — when several runtime steps re-bind the same client
//                       (a TryAll strategy moving it twice), only the last
//                       binding is enacted; superseded move steps drop out
//                       of the plan (their model effects are already
//                       committed; the final moveClient overrides them at
//                       the runtime layer).
//   2. batch-gauges   — gauge-redeploy steps that become ready at the same
//                       dependency frontier fold into one batched step, so
//                       the executor issues a single GaugeManager
//                       reconfigure for all affected elements and pays the
//                       slowest element instead of the sum. This is the
//                       pass that attacks the paper's "~30 s, dominated by
//                       gauge create/delete" repair time.
//   0. effect-deps    — (runs first, when an effect table is supplied)
//                       adds ordering edges between runtime steps whose
//                       statically inferred operator influences collide on
//                       the same server group (e.g. two load-shedding
//                       moves into one group), even when the lift-time
//                       element-overlap wiring left them independent. A
//                       second, semantic source of dependency edges from
//                       acme's effect inference.
//
// Dependency edges through dropped steps are rewired transitively, so the
// optimized plan keeps exactly the ordering guarantees of the original.
#pragma once

#include <cstdint>

#include "acme/effects.hpp"
#include "repair/plan.hpp"

namespace arcadia::repair {

struct PlanOptimizerStats {
  std::uint64_t moves_merged = 0;    ///< superseded move steps dropped
  std::uint64_t gauges_batched = 0;  ///< gauge steps folded into batches
  std::uint64_t effect_edges = 0;    ///< ordering edges from effect overlap
};

/// Run all passes in place. Deterministic: a given plan always optimizes to
/// the same result (the fleet determinism contract depends on this).
/// `effects` enables the effect-deps pass; pass nullptr to skip it.
PlanOptimizerStats optimize_plan(AdaptationPlan& plan,
                                 const acme::EffectTable* effects);

inline PlanOptimizerStats optimize_plan(AdaptationPlan& plan) {
  return optimize_plan(plan, nullptr);
}

}  // namespace arcadia::repair
