#include "repair/strategy.hpp"

#include "model/types.hpp"
#include "util/log.hpp"

namespace arcadia::repair {

namespace cs = model::cs;

acme::StrategyOutcome CxxStrategy::run(TacticContext& ctx) const {
  acme::StrategyOutcome outcome;
  bool any = false;
  try {
    for (const CxxTactic& tactic : tactics) {
      bool applied = tactic.run(ctx);
      outcome.tactics_run.emplace_back(tactic.name, applied);
      if (applied) {
        any = true;
        if (policy == StrategyPolicy::FirstSuccess) break;
      }
    }
  } catch (const Error& e) {
    outcome.aborted = true;
    outcome.abort_reason = e.what();
    return outcome;
  }
  if (any) {
    outcome.committed = true;
  } else {
    outcome.aborted = true;
    outcome.abort_reason = "NoApplicableTactic";
  }
  return outcome;
}

namespace {

double group_load(const model::Component& group) {
  return group.property_or(cs::kPropLoad, model::PropertyValue(0.0)).as_double();
}

}  // namespace

bool tactic_fix_server_load(TacticContext& ctx) {
  // Figure 5 lines 17-21: the connected server groups whose load exceeds
  // the threshold.
  std::vector<const model::Component*> loaded;
  for (const model::Component* grp :
       groups_of_client(ctx.system, ctx.element, ctx.conventions)) {
    if (group_load(*grp) > ctx.max_server_load) loaded.push_back(grp);
  }
  if (loaded.empty()) return false;
  bool grew = false;
  for (const model::Component* grp : loaded) {
    std::string server;
    if (ctx.queries) {
      auto found = ctx.queries->find_spare_server(grp->name(), ctx.min_bandwidth);
      if (!found) continue;
      server = *found;
    } else {
      server = grp->name() + "_srv_new";
      if (grp->has_representation() &&
          grp->representation_const().has_component(server)) {
        continue;
      }
    }
    perform_add_server(ctx.txn, ctx.system, grp->name(), server,
                       ctx.conventions);
    grew = true;
  }
  return grew;
}

bool tactic_fix_bandwidth(TacticContext& ctx) {
  // Figure 5 lines 30-31: applicable only when the client's connector role
  // reports insufficient bandwidth.
  const model::Connector* conn =
      client_connector(ctx.system, ctx.element, ctx.conventions);
  if (!conn || !conn->has_role(ctx.conventions.client_role)) return false;
  const double bw =
      conn->role(ctx.conventions.client_role)
          .property_or(cs::kPropBandwidth, model::PropertyValue(1.0e12))
          .as_double();
  if (bw >= ctx.min_bandwidth.as_bps()) return false;

  std::string target;
  if (ctx.queries) {
    auto found = ctx.queries->find_good_sgrp(ctx.element, ctx.min_bandwidth);
    if (!found) {
      throw ScriptError("NoServerGroupFound");  // Figure 5 line 41
    }
    target = *found;
  } else {
    const std::string current =
        group_of_client(ctx.system, ctx.element, ctx.conventions);
    for (const model::Component* c : ctx.system.components()) {
      if (c->type_name() == cs::kServerGroupT && c->name() != current) {
        target = c->name();
        break;
      }
    }
    if (target.empty()) throw ScriptError("NoServerGroupFound");
  }
  const std::string current =
      group_of_client(ctx.system, ctx.element, ctx.conventions);
  if (target == current) return false;
  perform_move(ctx.txn, ctx.system, ctx.element, target, ctx.conventions);
  return true;
}

bool tactic_fix_load_by_move(TacticContext& ctx) {
  const std::string current =
      group_of_client(ctx.system, ctx.element, ctx.conventions);
  if (current.empty()) return false;
  const model::Component& grp = ctx.system.component(current);
  if (group_load(grp) <= ctx.max_server_load) return false;

  std::string target;
  if (ctx.queries) {
    auto found = ctx.queries->find_less_loaded_sgrp(
        ctx.element, current, ctx.min_bandwidth, ctx.load_improvement);
    if (!found) return false;
    target = *found;
  } else {
    double best = group_load(grp) - ctx.load_improvement;
    for (const model::Component* c : ctx.system.components()) {
      if (c->type_name() != cs::kServerGroupT || c->name() == current) continue;
      if (group_load(*c) < best) {
        best = group_load(*c);
        target = c->name();
      }
    }
    if (target.empty()) return false;
  }
  perform_move(ctx.txn, ctx.system, ctx.element, target, ctx.conventions);
  return true;
}

bool tactic_shrink_group(TacticContext& ctx) {
  if (!ctx.system.has_component(ctx.element)) return false;
  const model::Component& grp = ctx.system.component(ctx.element);
  if (grp.type_name() != cs::kServerGroupT) return false;
  const double util =
      grp.property_or(cs::kPropUtilization, model::PropertyValue(1.0))
          .as_double();
  if (util >= ctx.min_utilization) return false;
  const std::int64_t replicas =
      grp.property_or(cs::kPropReplication, model::PropertyValue(0)).as_int();
  if (replicas <= ctx.min_replicas) return false;

  std::string victim;
  if (ctx.queries) {
    auto found = ctx.queries->find_removable_server(ctx.element);
    if (!found) return false;
    victim = *found;
  } else {
    if (!grp.has_representation()) return false;
    for (const model::Component* s : grp.representation_const().components()) {
      auto dyn = s->property_or(ctx.conventions.dynamic_prop,
                                model::PropertyValue(false));
      if (dyn.is_bool() && dyn.as_bool()) {
        victim = s->name();
        break;
      }
    }
    if (victim.empty()) return false;
  }
  perform_remove_server(ctx.txn, ctx.system, ctx.element, victim);
  return true;
}

CxxStrategy make_fix_latency_strategy() {
  CxxStrategy s;
  s.name = "fixLatency";
  s.policy = StrategyPolicy::FirstSuccess;
  s.tactics.push_back({"fixServerLoad", tactic_fix_server_load});
  s.tactics.push_back({"fixBandwidth", tactic_fix_bandwidth});
  s.tactics.push_back({"fixLoadByMove", tactic_fix_load_by_move});
  return s;
}

CxxStrategy make_trim_strategy() {
  CxxStrategy s;
  s.name = "trimServers";
  s.policy = StrategyPolicy::FirstSuccess;
  s.tactics.push_back({"shrinkGroup", tactic_shrink_group});
  return s;
}

}  // namespace arcadia::repair
