// Typed runtime-operator errors and the retry policy that absorbs them.
//
// OpError splits operator failures the way a grid runtime would: Transient
// (the operator node was busy / the request timed out — try again) versus
// Permanent (the target is gone — retrying cannot help). The PlanExecutor
// retries Transient failures on a bounded, deterministic exponential
// backoff schedule *before* falling through to the PR 5 compensation/abort
// path; Permanent failures and untyped Errors abort immediately as before.
//
// Backoff is sim-time only and jittered from a seeded Rng stream, so a
// faulted run replays bit-for-bit: backoff(attempt) =
//   min(base * multiplier^(attempt-1), max) * (1 + jitter * (2u - 1)),
// u ~ U[0,1) from the executor's jitter stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "util/deterministic_rng.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace arcadia::repair {

enum class OpErrorKind { Transient, Permanent };

/// A typed runtime-operator failure. Derives from arcadia::Error so code
/// that catches the base class (the executor's legacy fail path, the
/// engine) keeps working; the executor additionally catches OpError first
/// to route Transient failures into the retry schedule.
class OpError : public Error {
 public:
  OpError(OpErrorKind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  OpErrorKind kind() const { return kind_; }
  bool transient() const { return kind_ == OpErrorKind::Transient; }

 private:
  OpErrorKind kind_;
};

/// Bounded-retry policy for runtime plan steps. `max_attempts` counts the
/// first try: 4 means one initial attempt plus up to three retries.
/// `op_timeout` (0 = disabled) bounds the modeled cost of a single runtime
/// step — a step whose operator stalls past it is rolled back (inverse
/// ops) and retried like a transient failure.
struct RetryPolicy {
  int max_attempts = 4;
  SimTime backoff_base = SimTime::seconds(2);
  double backoff_multiplier = 2.0;
  SimTime backoff_max = SimTime::seconds(60);
  double jitter = 0.25;  ///< +/- fraction of the nominal delay
  std::uint64_t jitter_seed = 0x5EEDBACC0FFULL;
  SimTime op_timeout = SimTime::zero();

  /// Deterministic backoff before retry number `attempt` (1-based: the
  /// delay after the first failure is backoff(1, ...)). Consumes exactly
  /// one draw from `rng` per call.
  SimTime backoff(int attempt, Rng& rng) const {
    double nominal = backoff_base.as_seconds();
    for (int i = 1; i < attempt; ++i) nominal *= backoff_multiplier;
    nominal = std::min(nominal, backoff_max.as_seconds());
    const double u = rng.uniform();
    const double jittered = nominal * (1.0 + jitter * (2.0 * u - 1.0));
    return SimTime::seconds(std::max(0.0, jittered));
  }
};

}  // namespace arcadia::repair
