// Shipped repair scripts. figure5 (in acme/script.hpp) is the paper's
// strategy verbatim; the extended script is the production default: it
// makes addServer failure observable (no spare server -> tactic fails) and
// adds the load-shedding move the paper's experiment fell back to once
// both spare servers were recruited ("the only repair possible was to
// move clients", Section 5.3).
#pragma once

namespace arcadia::repair {

/// Default installed script: fixLatency with three tactics
/// (fixServerLoad, fixBandwidth, fixLoadByMove) plus trimServers.
const char* extended_script();

}  // namespace arcadia::repair
