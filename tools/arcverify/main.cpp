// arcverify driver: effect/flow analysis over the shipped repair scripts
// plus whole-deployment semantic verification over every registered
// scenario — each scenario's config is validated, then a real framework is
// assembled and started over its testbed and the cross-artifact rules run
// (constraints vs gauge feeds, operator costs, operator effects). Findings
// print compiler-style; the exit code is 1 only when an error-severity
// issue fires (warnings keep the gate green). Run by ctest
// (`arcverify_gate`) and the static-analysis CI lane.
//
// Usage: arcverify [--list-rules] [--report FILE]
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "acme/analysis.hpp"
#include "acme/effects.hpp"
#include "acme/script.hpp"
#include "core/experiment.hpp"
#include "core/framework.hpp"
#include "core/verify.hpp"
#include "repair/scripts.hpp"
#include "sim/scenario_registry.hpp"

namespace {

using arcadia::acme::Severity;
using arcadia::acme::analysis::AnalysisIssue;

struct Diagnostics {
  std::vector<std::string> lines;
  std::size_t errors = 0;
  std::size_t warnings = 0;

  void emit(const std::string& context, const AnalysisIssue& issue) {
    if (issue.severity == Severity::Error) {
      ++errors;
    } else {
      ++warnings;
    }
    std::string line = context + ": " + issue.to_string();
    std::cerr << line << "\n";
    lines.push_back(std::move(line));
  }

  /// Tool-level failure (a scenario that would not even assemble).
  void fail(const std::string& context, const std::string& message) {
    ++errors;
    std::string line = context + ": error: " + message;
    std::cerr << line << "\n";
    lines.push_back(std::move(line));
  }
};

}  // namespace

int main(int argc, char** argv) {
  namespace acme = arcadia::acme;
  namespace core = arcadia::core;
  namespace sim = arcadia::sim;

  std::string report_path;
  {
    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--list-rules") {
        for (const std::string& id : acme::analysis::rule_ids()) {
          std::cout << id << "\n";
        }
        return 0;
      }
      if (args[i] == "--report" && i + 1 < args.size()) {
        report_path = args[++i];
        continue;
      }
      std::cerr << "usage: arcverify [--list-rules] [--report FILE]\n";
      return 2;
    }
  }

  Diagnostics diag;
  const acme::EffectTable table = acme::make_client_server_effects();

  // ---- shipped scripts: effect/flow rules over the source alone ----
  const std::pair<const char*, const char*> scripts[] = {
      {"script:figure5", acme::figure5_script()},
      {"script:extended", arcadia::repair::extended_script()},
  };
  for (const auto& [name, source] : scripts) {
    try {
      const acme::Script script = acme::parse_script(source);
      for (const AnalysisIssue& issue :
           acme::analysis::analyze_script(script, table)) {
        diag.emit(name, issue);
      }
    } catch (const std::exception& e) {
      diag.fail(name, e.what());
    }
  }

  // ---- scenario catalog: config validation + live deployment rules ----
  const std::vector<std::string> names =
      sim::ScenarioRegistry::instance().names();
  for (const std::string& name : names) {
    try {
      core::ExperimentOptions opts = core::options_for(name);
      for (const AnalysisIssue& issue :
           core::verify_scenario_config(name, opts.scenario)) {
        diag.emit("scenario:" + name, issue);
      }

      // Assemble and start the framework the experiment runner would, with
      // the in-process hook off so every finding flows through here once.
      sim::Simulator simulator;
      sim::Testbed testbed =
          sim::build_scenario(simulator, name, opts.scenario);
      core::FrameworkConfig config = opts.framework;
      config.verify = core::VerifyMode::Off;
      if (opts.scenario.fault.enabled) config.fault = opts.scenario.fault;
      core::Framework framework(simulator, testbed, config);
      framework.start();
      for (const AnalysisIssue& issue : core::verify_framework(framework)) {
        diag.emit("deployment:" + name, issue);
      }
    } catch (const std::exception& e) {
      diag.fail("deployment:" + name, e.what());
    }
  }

  const std::string summary =
      "arcverify: " + std::to_string(diag.errors) + " error(s), " +
      std::to_string(diag.warnings) + " warning(s) over " +
      std::to_string(std::size(scripts)) + " script(s) and " +
      std::to_string(names.size()) + " scenario(s)";

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    for (const std::string& line : diag.lines) out << line << "\n";
    out << summary << "\n";
  }

  if (diag.errors > 0) {
    std::cerr << summary << "\n";
    return 1;
  }
  std::cout << summary << "\n";
  return 0;
}
