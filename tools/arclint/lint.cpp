#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace arclint {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when `word` occurs in `text` as a whole identifier token.
bool contains_word(std::string_view text, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// True when `word` occurs as a whole token immediately qualified by
/// `std::` (whitespace around `::` tolerated).
bool contains_std_word(std::string_view text, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident(text[end]);
    // Scan left over whitespace to find "::" then "std".
    std::size_t i = pos;
    while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) --i;
    bool left_ok = false;
    if (i >= 2 && text[i - 1] == ':' && text[i - 2] == ':') {
      i -= 2;
      while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1]))) {
        --i;
      }
      if (i >= 3 && text.substr(i - 3, 3) == "std" &&
          (i == 3 || !is_ident(text[i - 4]))) {
        left_ok = true;
      }
    }
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// True when the line is `#include <header>` for one of `headers`.
bool includes_header(std::string_view text,
                     const std::vector<std::string_view>& headers) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i >= text.size() || text[i] != '#') return false;
  ++i;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (text.substr(i, 7) != "include") return false;
  const std::size_t open = text.find('<', i);
  if (open == std::string_view::npos) return false;
  const std::size_t close = text.find('>', open);
  if (close == std::string_view::npos) return false;
  const std::string_view header = text.substr(open + 1, close - open - 1);
  return std::find(headers.begin(), headers.end(), header) != headers.end();
}

/// True when the line is `#include "header"` for one of `headers`. Quoted
/// includes must be matched on the RAW line: the stripper blanks the quoted
/// path like any other string literal.
bool includes_quoted_header(std::string_view text,
                            const std::vector<std::string_view>& headers) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i >= text.size() || text[i] != '#') return false;
  ++i;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (text.substr(i, 7) != "include") return false;
  const std::size_t open = text.find('"', i);
  if (open == std::string_view::npos) return false;
  const std::size_t close = text.find('"', open + 1);
  if (close == std::string_view::npos) return false;
  const std::string_view header = text.substr(open + 1, close - open - 1);
  return std::find(headers.begin(), headers.end(), header) != headers.end();
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Scans raw (unstripped) text for `arclint: allow(rule)` /
/// `arclint: allow-file(rule)` directives.
bool has_directive(std::string_view raw, std::string_view kind,
                   std::string_view rule) {
  std::size_t pos = 0;
  while ((pos = raw.find("arclint:", pos)) != std::string_view::npos) {
    std::size_t i = pos + 8;
    while (i < raw.size() && raw[i] == ' ') ++i;
    if (starts_with(raw.substr(i), kind)) {
      i += kind.size();
      if (i < raw.size() && raw[i] == '(') {
        const std::size_t close = raw.find(')', i);
        if (close != std::string_view::npos &&
            raw.substr(i + 1, close - i - 1) == rule) {
          return true;
        }
      }
    }
    pos += 8;
  }
  return false;
}

struct LineCtx {
  std::string_view stripped;  ///< matching surface
  std::string_view raw;       ///< directive surface
};

}  // namespace

std::string strip_comments_and_strings(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  enum class State {
    Code,
    LineComment,
    BlockComment,
    String,
    Char,
    RawString
  };
  State state = State::Code;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident(source[i - 1]))) {
          // R"delim( — capture the delimiter.
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < source.size() && source[j] != '(' &&
                 raw_delim.size() < 16) {
            raw_delim += source[j++];
          }
          state = State::RawString;
          out += ' ';
          // Emit placeholders up to and including '(' below via fallthrough
          // of the loop: simplest is to jump i to j and let RawString eat.
          for (std::size_t k = i + 1; k <= j && k < source.size(); ++k) {
            out += source[k] == '\n' ? '\n' : ' ';
          }
          i = j;
        } else if (c == '"') {
          state = State::String;
          out += ' ';
        } else if (c == '\'') {
          state = State::Char;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Code;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::String:
        if (c == '\\' && i + 1 < source.size()) {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::Code;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::Char:
        if (c == '\\' && i + 1 < source.size()) {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
      case State::RawString: {
        // Look for )delim"
        if (c == ')' &&
            source.substr(i + 1, raw_delim.size()) == raw_delim &&
            i + 1 + raw_delim.size() < source.size() &&
            source[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 2; ++k) out += ' ';
          i += raw_delim.size() + 1;
          state = State::Code;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "unordered-container", "wall-clock",   "raw-mutex",
      "hotpath-std-function", "entropy",     "tools-parity",
      "durability-io",       "shard-isolation"};
  return ids;
}

std::vector<Finding> check_tools_parity(
    const std::vector<std::string>& tool_names, std::string_view cmake_text,
    std::string_view ci_text) {
  std::vector<Finding> findings;
  for (const std::string& tool : tool_names) {
    // ctest registration: some add_test(...) argument list names the tool
    // (as the command or an argument — either way ctest runs it).
    bool has_test = false;
    std::size_t pos = 0;
    while ((pos = cmake_text.find("add_test", pos)) !=
           std::string_view::npos) {
      const std::size_t open = cmake_text.find('(', pos);
      if (open == std::string_view::npos) break;
      const std::size_t close = cmake_text.find(')', open);
      if (close == std::string_view::npos) break;
      if (contains_word(cmake_text.substr(open, close - open), tool)) {
        has_test = true;
        break;
      }
      pos = close;
    }
    if (!has_test) {
      findings.push_back(Finding{
          "CMakeLists.txt", 0, "tools-parity",
          "tool '" + tool +
              "' is not registered with ctest; add an add_test gate so the "
              "suite runs what CI runs"});
    }
    if (!contains_word(ci_text, tool)) {
      findings.push_back(Finding{
          ".github/workflows/ci.yml", 0, "tools-parity",
          "tool '" + tool +
              "' has no CI step; a tool the workflow never runs is a gate "
              "nobody trusts"});
    }
  }
  return findings;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source) {
  std::vector<Finding> findings;

  const bool in_src = starts_with(path, "src/");
  const bool in_sim_or_repair =
      starts_with(path, "src/sim/") || starts_with(path, "src/repair/");
  const bool is_annotations = path == "src/util/annotations.hpp";
  // The single allow-listed randomness source tree-wide: every other file
  // must draw through arcadia::Rng so runs stay a pure function of
  // (config, seed) — including fault injection (the fault plane forks its
  // streams from here too).
  const bool is_rng = path == "src/util/deterministic_rng.hpp";
  // The single allow-listed file-I/O seam under src/: durability/io owns
  // every descriptor so crash atomicity (tmp + fsync + rename), torn-tail
  // handling, and the abandon() kill -9 semantics live in one place.
  const bool is_durability_io = starts_with(path, "src/durability/io.");
  const bool hotpath_marked =
      source.find("arclint: hotpath") != std::string_view::npos;
  // Shard-kernel files declare themselves with `// arclint: shard`; the
  // marker never collides with allow directives (those spell
  // "arclint: allow(...)").
  const bool shard_marked =
      starts_with(path, "src/sim/") &&
      source.find("arclint: shard") != std::string_view::npos;

  struct Rule {
    bool applies;
    std::string_view id;
  };
  const Rule rules[] = {
      {in_src, "unordered-container"},
      {in_sim_or_repair, "wall-clock"},
      {in_src && !is_annotations, "raw-mutex"},
      {hotpath_marked, "hotpath-std-function"},
      {in_src && !is_rng, "entropy"},
      {in_src && !is_durability_io, "durability-io"},
      {shard_marked, "shard-isolation"},
  };
  constexpr std::size_t kNumRules = sizeof(rules) / sizeof(rules[0]);
  bool any = false;
  for (const Rule& r : rules) any = any || r.applies;
  if (!any) return findings;

  // File-level exemptions come off the raw text.
  bool file_allowed[kNumRules] = {};
  for (std::size_t r = 0; r < kNumRules; ++r) {
    file_allowed[r] = has_directive(source, "allow-file", rules[r].id);
  }

  const std::string stripped = strip_comments_and_strings(source);

  // Walk both texts line by line in lockstep (stripping preserves lines).
  std::size_t line_no = 0;
  std::size_t s_pos = 0, r_pos = 0;
  while (s_pos <= stripped.size() && r_pos <= source.size()) {
    ++line_no;
    const std::size_t s_end = std::min(stripped.find('\n', s_pos),
                                       stripped.size());
    const std::size_t r_end =
        std::min(source.find('\n', r_pos), source.size());
    const std::string_view line =
        std::string_view(stripped).substr(s_pos, s_end - s_pos);
    const std::string_view raw_line = source.substr(r_pos, r_end - r_pos);

    auto check = [&](std::size_t rule_idx, bool hit,
                     const std::string& message) {
      if (!hit || !rules[rule_idx].applies || file_allowed[rule_idx]) return;
      if (has_directive(raw_line, "allow", rules[rule_idx].id)) return;
      findings.push_back(Finding{std::string(path), line_no,
                                 std::string(rules[rule_idx].id), message});
    };

    // unordered-container
    check(0,
          contains_word(line, "unordered_map") ||
              contains_word(line, "unordered_set") ||
              contains_word(line, "unordered_multimap") ||
              contains_word(line, "unordered_multiset"),
          "hash-ordered container on the simulation/dispatch path; "
          "iteration order feeds event order — use util::SymbolMap, "
          "std::map, or a sorted vector");

    // wall-clock
    {
      // Entropy words moved to the tree-wide "entropy" rule below; this
      // rule keeps the time-source words for sim/ and repair/.
      static constexpr std::string_view kClockWords[] = {
          "steady_clock", "system_clock", "high_resolution_clock",
          "gettimeofday", "clock_gettime", "timespec_get",
          "localtime",    "gmtime",
      };
      bool hit = false;
      for (std::string_view w : kClockWords) {
        if (contains_word(line, w)) {
          hit = true;
          break;
        }
      }
      check(1, hit,
            "wall-clock in simulated code; runs must be a pure function of "
            "(config, seed) — use sim::Simulator::now()");
    }

    // raw-mutex
    {
      static constexpr std::string_view kStdSync[] = {
          "mutex",          "timed_mutex",
          "recursive_mutex", "recursive_timed_mutex",
          "shared_mutex",   "shared_timed_mutex",
          "lock_guard",     "unique_lock",
          "scoped_lock",    "shared_lock",
          "condition_variable", "condition_variable_any",
      };
      bool hit = includes_header(
          line, {"mutex", "shared_mutex", "condition_variable"});
      if (!hit) {
        for (std::string_view w : kStdSync) {
          if (contains_std_word(line, w)) {
            hit = true;
            break;
          }
        }
      }
      check(2, hit,
            "raw std synchronization primitive; lock through the annotated "
            "wrappers in util/annotations.hpp (util::Mutex, util::MutexLock, "
            "util::CondVar) so -Wthread-safety coverage stays total");
    }

    // hotpath-std-function
    check(3, contains_std_word(line, "function"),
          "std::function in a `// arclint: hotpath` file; it heap-allocates "
          "beyond two pointers of captures — use util::SmallFn or a "
          "template parameter");

    // entropy: any randomness source other than util/deterministic_rng.hpp
    {
      static constexpr std::string_view kEntropyWords[] = {
          "random_device", "srand",       "rand",
          "mt19937",       "mt19937_64",  "minstd_rand",
          "default_random_engine",
      };
      bool hit = includes_header(line, {"random"});
      if (!hit) {
        for (std::string_view w : kEntropyWords) {
          if (contains_word(line, w)) {
            hit = true;
            break;
          }
        }
      }
      check(4, hit,
            "ambient randomness source; the only allowed generator is "
            "arcadia::Rng from util/deterministic_rng.hpp (seeded, "
            "forkable) — determinism and fault replay depend on it");
    }

    // durability-io: library code does not open files behind the journal's
    // back.
    {
      // <cstdio> stays legal: stderr logging uses it. Opening a FILE* is
      // what the rule forbids, and the fopen words catch that.
      static constexpr std::string_view kFileIoWords[] = {
          "ofstream", "ifstream", "fstream", "fopen", "freopen",
      };
      bool hit = includes_header(line, {"fstream"});
      if (!hit) {
        for (std::string_view w : kFileIoWords) {
          if (contains_word(line, w)) {
            hit = true;
            break;
          }
        }
      }
      check(5, hit,
            "direct file I/O under src/; route it through durability/io.hpp "
            "(AppendFile, write_file_atomic, read_file) so crash atomicity "
            "and torn-tail recovery stay centralized");
    }

    // shard-isolation: files under src/sim/ marked `// arclint: shard` (the
    // sharded simulation kernel) may not reach into the fleet control plane
    // or the global buses — cross-shard effects must route through the
    // coordinator seam (mail, barrier hook) or the window bound breaks.
    {
      bool hit = contains_word(line, "FleetManager") ||
                 contains_word(line, "EventBus") ||
                 contains_word(line, "DurabilityPlane");
      if (!hit) {
        // Quoted includes live in string literals, so scan the raw line.
        hit = includes_quoted_header(
            raw_line, {"core/fleet_manager.hpp", "core/fleet.hpp",
                       "events/bus.hpp", "durability/plane.hpp"});
      }
      check(6, hit,
            "shard-kernel file touches the fleet control plane / global "
            "buses; route cross-shard effects through SimCoordinator mail "
            "or the barrier hook so the conservative window bound stays "
            "sound");
    }

    if (s_end >= stripped.size() || r_end >= source.size()) break;
    s_pos = s_end + 1;
    r_pos = r_end + 1;
  }
  return findings;
}

}  // namespace arclint
