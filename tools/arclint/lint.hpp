// arclint — Arcadia's repo-specific determinism/concurrency linter.
//
// Generic static analysis (clang -Wthread-safety, clang-tidy, sanitizers)
// cannot know this repo's invariants; arclint encodes them as lexical rules
// over src/:
//
//   unordered-container   No std::unordered_{map,set,multimap,multiset}
//                         anywhere under src/. Hash-ordered iteration has
//                         already leaked into dispatch order once (the
//                         FlowNetwork allocator); ordered containers make
//                         the bit-identical determinism contract hold by
//                         construction.
//   wall-clock            No rand()/srand()/std::random_device and no
//                         std::chrono clocks (steady/system/high_resolution)
//                         or C time calls in src/sim/ and src/repair/.
//                         Simulated behaviour must be a pure function of
//                         (config, seed) — util::Rng only.
//   raw-mutex             No std::mutex / lock_guard / unique_lock /
//                         scoped_lock / condition_variable (or their
//                         headers) outside src/util/annotations.hpp. All
//                         locking goes through the annotated util::Mutex
//                         wrappers so clang thread-safety coverage is total.
//   hotpath-std-function  In files carrying a `// arclint: hotpath` marker,
//                         no std::function (heap-owning type erasure) —
//                         util::SmallFn or templates only.
//   tools-parity          Every tools/* binary must be wired into both the
//                         ctest suite (an add_test in the root
//                         CMakeLists.txt) and the CI workflow — a tool
//                         nobody runs is a gate nobody trusts. Project-
//                         level: checked once over CMakeLists.txt and
//                         .github/workflows/ci.yml, not per source file.
//   shard-isolation       In src/sim/ files carrying a `// arclint: shard`
//                         marker (the sharded simulation kernel), no
//                         FleetManager / EventBus / DurabilityPlane tokens
//                         and no quoted include of core/fleet_manager.hpp,
//                         core/fleet.hpp, events/bus.hpp, or
//                         durability/plane.hpp. Cross-shard effects route
//                         through the SimCoordinator seam (mail, barrier
//                         hook); a kernel that reaches into the control
//                         plane directly invalidates the conservative
//                         window bound.
//
// Exemptions are explicit and carry a justification in the source:
//   // arclint: allow(<rule>): <reason>        exempts that line
//   // arclint: allow-file(<rule>): <reason>   exempts the whole file
//
// Matching runs on comment- and string-stripped text (a rule named in a
// comment is not a violation); directives are read from the raw text (they
// live in comments).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace arclint {

struct Finding {
  std::string path;     ///< repo-relative, forward slashes
  std::size_t line;     ///< 1-based
  std::string rule;     ///< rule id, e.g. "raw-mutex"
  std::string message;  ///< what was matched and why it is banned
};

/// Replace comments, string literals, and char literals with spaces,
/// preserving line structure (newlines survive) so findings keep their line
/// numbers. Handles //, /* */, escapes, and R"delim(...)delim" raw strings.
std::string strip_comments_and_strings(std::string_view source);

/// Lint one file's contents. `path` must be repo-relative with forward
/// slashes (e.g. "src/sim/network.hpp") — rule applicability is decided
/// from it. Returns findings in line order.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source);

/// Project-level "tools-parity" rule: for each tool name, the root
/// CMakeLists text must contain an add_test(...) invocation naming it and
/// the CI workflow text must mention it as a whole word. Findings point at
/// the file missing the wiring, with line 0 (file-level).
std::vector<Finding> check_tools_parity(
    const std::vector<std::string>& tool_names, std::string_view cmake_text,
    std::string_view ci_text);

/// All rule ids, for --list-rules and the self-test.
const std::vector<std::string>& rule_ids();

}  // namespace arclint
