// arclint driver: walk the repo's src/ tree, lint every C++ source, check
// tools-parity (every tools/* binary wired into ctest and CI), print
// findings compiler-style, exit nonzero when any rule fires. Run by ctest
// (`arclint_tree`) and the static-analysis CI lane.
//
// Usage: arclint [--list-rules] <repo-root>
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool has_cpp_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--list-rules") {
    for (const std::string& id : arclint::rule_ids()) {
      std::cout << id << "\n";
    }
    return 0;
  }
  if (args.size() != 1) {
    std::cerr << "usage: arclint [--list-rules] <repo-root>\n";
    return 2;
  }

  const fs::path root = args[0];
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "arclint: no src/ directory under " << root << "\n";
    return 2;
  }

  // Deterministic order: collect then sort (directory_iterator order is
  // filesystem-dependent).
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t checked = 0;
  std::vector<arclint::Finding> all;
  for (const fs::path& file : files) {
    const std::string rel =
        fs::relative(file, root).generic_string();
    const std::string content = read_file(file);
    std::vector<arclint::Finding> found = arclint::lint_source(rel, content);
    all.insert(all.end(), found.begin(), found.end());
    ++checked;
  }

  // tools-parity: every tool directory under tools/ must be wired into the
  // ctest suite and the CI workflow. Lexical over the two wiring files.
  {
    std::vector<std::string> tool_names;
    const fs::path tools = root / "tools";
    if (fs::is_directory(tools)) {
      for (const auto& entry : fs::directory_iterator(tools)) {
        if (entry.is_directory() &&
            fs::exists(entry.path() / "CMakeLists.txt")) {
          tool_names.push_back(entry.path().filename().string());
        }
      }
    }
    std::sort(tool_names.begin(), tool_names.end());
    const std::string cmake_text = read_file(root / "CMakeLists.txt");
    const std::string ci_text =
        read_file(root / ".github" / "workflows" / "ci.yml");
    std::vector<arclint::Finding> parity =
        arclint::check_tools_parity(tool_names, cmake_text, ci_text);
    all.insert(all.end(), parity.begin(), parity.end());
  }

  for (const arclint::Finding& f : all) {
    std::cerr << f.path << ":" << f.line << ": error: [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!all.empty()) {
    std::cerr << "arclint: " << all.size() << " finding(s) in " << checked
              << " files\n";
    return 1;
  }
  std::cout << "arclint: clean (" << checked << " files)\n";
  return 0;
}
