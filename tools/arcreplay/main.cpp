// arcreplay: replay debugging over a durable run directory (DESIGN.md §8).
// Reconstructs the architectural model at any LSN or sim-time from a
// retained snapshot plus the journal's committed history — no simulation —
// and cross-checks it against the snapshots the run wrote. The mechanics
// live in the library (durability/replay.*); this is the CLI and the ctest
// selftest (`arcreplay_selftest`).
//
// Usage:
//   arcreplay <dir> [--shard K] [--to-lsn N | --to-time SECONDS]
//   arcreplay <dir> --list                 # record-by-record journal dump
//   arcreplay <dir> --around R [--context N]   # op window around repair R
//   arcreplay <dir> --diff-snapshot        # replay vs newest snapshot
//   arcreplay --selftest                   # end-to-end gate (ctest/CI)
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/recovery.hpp"
#include "durability/io.hpp"
#include "durability/journal.hpp"
#include "durability/model_codec.hpp"
#include "durability/replay.hpp"
#include "durability/snapshot.hpp"
#include "fault/crash_plan.hpp"
#include "sim/scenario_registry.hpp"

using namespace arcadia;

namespace {

struct DurableDir {
  std::string dir;
  std::vector<durability::JournalRecord> records;
  bool torn = false;
  std::string warning;
  /// Loaded snapshots, ascending LSN (pruned ones are simply absent).
  std::vector<durability::Snapshot> snapshots;
};

DurableDir load_dir(const std::string& dir) {
  DurableDir loaded;
  loaded.dir = dir;
  const durability::JournalReadResult journal =
      durability::read_journal(dir + "/" + durability::kJournalFile);
  loaded.records = journal.records;
  loaded.torn = journal.torn;
  loaded.warning = journal.warning;
  if (journal.torn) {
    std::cerr << "arcreplay: journal tail torn (" << journal.warning
              << "); using the valid prefix of " << journal.records.size()
              << " records\n";
  }
  for (const std::string& name : durability::list_snapshots(dir)) {
    loaded.snapshots.push_back(durability::load_snapshot(dir + "/" + name));
  }
  return loaded;
}

const durability::ShardSnapshot* find_shard(const durability::Snapshot& snap,
                                            std::uint32_t shard) {
  for (const durability::ShardSnapshot& s : snap.shards) {
    if (s.shard == shard) return &s;
  }
  return nullptr;
}

/// Rebuild `shard`'s model at (to_lsn, to_time): decode the newest usable
/// snapshot at or before the target, then fold the journal forward.
std::unique_ptr<model::System> reconstruct(const DurableDir& loaded,
                                           std::uint32_t shard,
                                           std::uint64_t to_lsn,
                                           SimTime to_time,
                                           durability::ReplayStats* stats_out) {
  const durability::Snapshot* base = nullptr;
  for (const durability::Snapshot& snap : loaded.snapshots) {
    if (snap.lsn <= to_lsn && snap.at <= to_time &&
        find_shard(snap, shard) != nullptr) {
      base = &snap;  // ascending scan keeps the newest eligible one
    }
  }
  if (base == nullptr) {
    throw durability::DurabilityError(
        "no retained snapshot at or before the replay target — raise "
        "Options::retention or target a later LSN");
  }
  std::unique_ptr<model::System> system =
      durability::decode_system(find_shard(*base, shard)->model);
  durability::ReplayOptions opts;
  opts.shard = shard;
  opts.to_lsn = to_lsn;
  opts.to_time = to_time;
  durability::ReplayStats stats;
  // Skip history the snapshot already contains.
  std::vector<durability::JournalRecord> tail;
  for (const durability::JournalRecord& r : loaded.records) {
    if (r.lsn > base->lsn) tail.push_back(r);
  }
  stats = durability::replay_journal(*system, tail, opts);
  if (stats_out != nullptr) *stats_out = stats;
  return system;
}

std::string describe(const durability::JournalRecord& r) {
  std::ostringstream out;
  out << "lsn " << r.lsn << "  t=" << r.at.as_seconds() << "s  shard "
      << r.shard << "  " << durability::to_string(r.type);
  switch (r.type) {
    case durability::RecordType::OpBatch:
      out << "  repair #" << r.repair_index
          << (r.compensation ? " (compensation)" : "") << ", " << r.ops.size()
          << " ops";
      break;
    case durability::RecordType::PlanEvent:
      out << "  " << r.phase << " repair #" << r.repair_index << " ("
          << r.plan_steps << " steps)";
      break;
    case durability::RecordType::GaugeBatch:
      out << "  " << r.gauges.size() << " deltas";
      break;
    case durability::RecordType::RngPositions:
      out << "  " << r.rng_streams.size() << " streams";
      break;
    case durability::RecordType::SnapshotMark:
      out << "  " << r.snapshot_file << " (snapshot lsn " << r.snapshot_lsn
          << ", digest " << std::hex << r.model_digest << std::dec << ")";
      break;
  }
  return out.str();
}

int cmd_list(const DurableDir& loaded) {
  for (const durability::JournalRecord& r : loaded.records) {
    std::cout << describe(r) << "\n";
  }
  std::cout << loaded.records.size() << " records, " << loaded.snapshots.size()
            << " snapshots retained\n";
  return 0;
}

/// The op window around one repair: every OpBatch/PlanEvent of repair R,
/// plus `context` journal records on each side — what you read first when a
/// repair went wrong.
int cmd_around(const DurableDir& loaded, std::uint64_t repair,
               std::size_t context) {
  std::size_t first = loaded.records.size(), last = 0;
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    const durability::JournalRecord& r = loaded.records[i];
    const bool of_repair =
        (r.type == durability::RecordType::OpBatch ||
         r.type == durability::RecordType::PlanEvent) &&
        r.repair_index == repair;
    if (!of_repair) continue;
    if (i < first) first = i;
    last = i;
  }
  if (first > last) {
    std::cerr << "arcreplay: no journal records for repair #" << repair
              << "\n";
    return 1;
  }
  const std::size_t lo = first > context ? first - context : 0;
  const std::size_t hi =
      std::min(loaded.records.size(), last + context + 1);
  for (std::size_t i = lo; i < hi; ++i) {
    const durability::JournalRecord& r = loaded.records[i];
    std::cout << (i >= first && i <= last ? ">> " : "   ") << describe(r)
              << "\n";
    if (r.type == durability::RecordType::OpBatch &&
        r.repair_index == repair) {
      for (const model::OpRecord& op : r.ops) {
        std::cout << "        " << op.describe() << "\n";
      }
    }
  }
  return 0;
}

int cmd_diff_snapshot(const DurableDir& loaded, std::uint32_t shard) {
  if (loaded.snapshots.empty()) {
    std::cerr << "arcreplay: no snapshots in " << loaded.dir << "\n";
    return 1;
  }
  const durability::Snapshot& target = loaded.snapshots.back();
  const durability::ShardSnapshot* stored = find_shard(target, shard);
  if (stored == nullptr) {
    std::cerr << "arcreplay: snapshot has no shard " << shard << "\n";
    return 1;
  }
  if (loaded.snapshots.size() == 1) {
    std::cout << "only one snapshot retained (lsn " << target.lsn
              << "); nothing to replay against it\n";
    return 0;
  }
  std::unique_ptr<model::System> replayed =
      reconstruct(loaded, shard, target.lsn, SimTime::infinity(), nullptr);
  std::unique_ptr<model::System> snapshot_model =
      durability::decode_system(stored->model);
  const std::string diff = durability::diff_systems(*replayed, *snapshot_model);
  if (diff.empty()) {
    std::cout << "replay == snapshot at lsn " << target.lsn << " (digest "
              << std::hex << stored->model_digest << std::dec << ")\n";
    return 0;
  }
  std::cerr << "arcreplay: replayed model diverges from snapshot lsn "
            << target.lsn << ":\n"
            << diff;
  return 1;
}

int cmd_reconstruct(const DurableDir& loaded, std::uint32_t shard,
                    std::uint64_t to_lsn, SimTime to_time) {
  durability::ReplayStats stats;
  std::unique_ptr<model::System> system =
      reconstruct(loaded, shard, to_lsn, to_time, &stats);
  std::cout << "reconstructed shard " << shard << " at lsn " << stats.last_lsn
            << " (t=" << stats.last_time.as_seconds() << "s): "
            << stats.records_applied << " batches, " << stats.ops_applied
            << " ops, " << stats.gauge_writes << " gauge writes\n"
            << "model digest " << std::hex
            << durability::system_digest(*system) << std::dec << "\n";
  return 0;
}

/// End-to-end gate: run a compressed lossy-grid durable run, then prove the
/// journal supports both replay modes — final-LSN reconstruction matches
/// the live model's digest, and snapshot cross-check diffs clean.
int selftest() {
  const std::string dir = "arcreplay-selftest.durable";
  durability::ensure_dir(dir);
  for (const std::string& name : durability::list_dir(dir)) {
    durability::remove_file(dir + "/" + name);
  }

  core::RecoveryOptions opts;
  opts.dir = dir;
  opts.scenario = "lossy-grid";
  opts.config = sim::scenario_defaults("lossy-grid");
  opts.config.horizon = SimTime::seconds(500);
  opts.config.stress_start = SimTime::seconds(150);
  opts.config.stress_end = SimTime::seconds(330);
  opts.framework.verify = core::VerifyMode::Off;
  opts.framework.durability.snapshot_period = SimTime::seconds(120);
  opts.framework.durability.retention = 16;  // keep snapshot-0 for anchoring
  const core::RecoveryResult run = core::run_with_recovery(opts);

  const DurableDir loaded = load_dir(dir);
  if (loaded.torn) {
    std::cerr << "SELFTEST FAILED: clean run produced a torn journal\n";
    return 1;
  }
  if (run.final_lsn == 0 || loaded.records.size() == 0 ||
      loaded.snapshots.size() < 2) {
    std::cerr << "SELFTEST FAILED: journal/snapshots empty (lsn "
              << run.final_lsn << ", " << loaded.snapshots.size()
              << " snapshots)\n";
    return 1;
  }
  std::unique_ptr<model::System> replayed =
      reconstruct(loaded, 0, std::numeric_limits<std::uint64_t>::max(),
                  SimTime::infinity(), nullptr);
  const std::uint64_t digest = durability::system_digest(*replayed);
  if (digest != run.model_digest) {
    std::cerr << "SELFTEST FAILED: replayed digest " << std::hex << digest
              << " != live digest " << run.model_digest << std::dec << "\n";
    return 1;
  }
  const int diff_rc = cmd_diff_snapshot(loaded, 0);
  if (diff_rc != 0) {
    std::cerr << "SELFTEST FAILED: snapshot diff\n";
    return 1;
  }
  std::cout << "OK arcreplay selftest: " << loaded.records.size()
            << " records, " << loaded.snapshots.size()
            << " snapshots, replay digest matches live model\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::uint32_t shard = 0;
  std::uint64_t to_lsn = std::numeric_limits<std::uint64_t>::max();
  SimTime to_time = SimTime::infinity();
  bool list = false, diff_snapshot = false, run_selftest = false;
  bool around = false;
  std::uint64_t repair = 0;
  std::size_t context = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "arcreplay: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--selftest") {
      run_selftest = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--diff-snapshot") {
      diff_snapshot = true;
    } else if (arg == "--shard") {
      shard = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--to-lsn") {
      to_lsn = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--to-time") {
      to_time = SimTime::seconds(std::strtod(next(), nullptr));
    } else if (arg == "--around") {
      around = true;
      repair = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--context") {
      context = std::strtoull(next(), nullptr, 0);
    } else if (!arg.empty() && arg[0] != '-') {
      dir = arg;
    } else {
      std::cerr << "arcreplay: unknown option " << arg << "\n";
      return 2;
    }
  }

  try {
    if (run_selftest) return selftest();
    if (dir.empty()) {
      std::cerr << "usage: arcreplay <dir> [--shard K] [--to-lsn N] "
                   "[--to-time S] [--list] [--around R [--context N]] "
                   "[--diff-snapshot] | arcreplay --selftest\n";
      return 2;
    }
    const DurableDir loaded = load_dir(dir);
    if (list) return cmd_list(loaded);
    if (around) return cmd_around(loaded, repair, context);
    if (diff_snapshot) return cmd_diff_snapshot(loaded, shard);
    return cmd_reconstruct(loaded, shard, to_lsn, to_time);
  } catch (const std::exception& e) {
    std::cerr << "arcreplay: " << e.what() << "\n";
    return 1;
  }
}
